"""The user-side search engine (the right half of the Fig. 3 DFD).

Frame queries: extract the query frame's features, prune candidates with
the range index, compute per-feature distances, min-max normalize each
feature over the candidate set, and rank by the weighted sum (§5's
"combined" approach) or by one feature alone (the individual Table 1
columns).

Video queries: key-frame the query clip and align its feature sequence
against every stored video's sequence with the paper's dynamic-programming
similarity.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cache import QueryCache, digest_array, digest_vectors
from repro.core.config import SystemConfig
from repro.core.results import RetrievalResult, SearchResults
from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.imaging import accel
from repro.imaging.image import Image
from repro.indexing import ann as ann_metrics
from repro.indexing.ann import IVFIndex
from repro.indexing.tree import RangeIndex
from repro.obs import NULL_OBS, Obs, log
from repro.resilience import (
    NULL_POLICIES,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ResiliencePolicies,
    armed_deadline,
)
from repro.runtime import WorkerPool, resolve_workers
from repro.similarity.dp import dtw_distance, sequence_similarity
from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores
from repro.video.generator import SyntheticVideo
from repro.video.keyframes import KeyFrameExtractor

__all__ = ["QueryRequest", "SearchEngine", "VideoMatch"]

#: histogram edges for candidate-set sizes (counts, not seconds)
_COUNT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 4096.0,
    16384.0, 65536.0,
)

#: histogram edges for the range-index pruning ratio (fraction in [0, 1])
_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def _extract_query_features(
    frame: Image,
    extractors: Dict[str, FeatureExtractor],
    names: Sequence[str],
) -> Dict[str, FeatureVector]:
    """One query key frame's feature vectors (worker-process safe)."""
    return {name: extractors[name].extract(frame) for name in names}


def _stable_topk(fused: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, in stable-argsort order.

    Exactly equivalent to ``np.argsort(fused, kind="stable")[:k]`` (ties
    broken by original position, including at the selection boundary) but
    O(n + k log k) instead of O(n log n): an ``argpartition`` narrows to k
    candidates, a boundary-tie repair keeps the lowest-index tied entries,
    and a lexsort orders the survivors.
    """
    n = fused.size
    k = max(0, min(k, n))
    if k == 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        return np.lexsort((np.arange(n), fused))
    sel = np.argpartition(fused, k - 1)[:k]
    boundary = fused[sel].max()
    tied_selected = int(np.count_nonzero(fused[sel] == boundary))
    tied_total = int(np.count_nonzero(fused == boundary))
    if tied_total > tied_selected:
        # argpartition picked an arbitrary subset of the boundary ties;
        # stable order wants the lowest original indices
        strictly = np.nonzero(fused < boundary)[0]
        tied = np.nonzero(fused == boundary)[0][: k - strictly.size]
        sel = np.concatenate([strictly, tied])
    return sel[np.lexsort((sel, fused[sel]))]


@dataclass
class QueryRequest:
    """One query of a :meth:`SearchEngine.query_batch` call.

    Exactly one of ``image`` (a frame query) or ``query_vectors`` (a
    precomputed-vector query, the feedback loop's shape) must be set.
    ``deadline`` is an *already ticking* budget -- the serving layer
    creates it at admission time so queue wait counts -- armed around the
    request's per-request stages.  ``nprobe`` overrides ``ann_nprobe``
    for this request only (the admission controller's degrade ladder).
    """

    image: Optional[Image] = None
    query_vectors: Optional[Dict[str, FeatureVector]] = None
    features: Optional[Sequence[str]] = None
    top_k: int = 20
    use_index: Optional[bool] = None
    candidate_ids: Optional[Sequence[int]] = None
    weights: Optional[Dict[str, float]] = None
    deadline: Optional[Deadline] = None
    nprobe: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.image is None) == (self.query_vectors is None):
            raise ValueError("exactly one of image / query_vectors is required")

    @property
    def kind(self) -> str:
        return "frame" if self.image is not None else "vectors"


@dataclass
class _QueryPlan:
    """One request's resolved scoring work, between plan and rank.

    :meth:`SearchEngine._plan_vectors` resolves candidates and scoring
    flags into a plan, :meth:`SearchEngine._score_plan` turns it into raw
    per-feature distances, :meth:`SearchEngine._rank_plan` fuses and
    ranks.  The split exists so :meth:`SearchEngine.query_batch` can run
    several plans through one scoring pass (one scatter per shard for
    the sharded engine) while keeping every per-query kernel call
    identical to serial execution.  The sharded coordinator reuses the
    same carrier with its own fields (``candidate_arr`` .. ``merge_t0``).
    """

    query_vectors: Dict[str, FeatureVector]
    names: List[str]
    top_k: int
    weights: Optional[Dict[str, float]]
    n_total: int = 0
    explain: Optional[Dict[str, object]] = None
    #: early result for an empty candidate set (skips score/rank)
    empty: Optional[SearchResults] = None
    batched: bool = False
    fast: bool = False
    # single-store scoring state
    candidate_ids: Optional[List[int]] = None
    full_store: bool = False
    records: Optional[List[FrameRecord]] = None
    rows: Optional[np.ndarray] = None
    distance_ms: Optional[Dict[str, float]] = None
    # sharded scoring state (ShardedSearchEngine only)
    candidate_arr: Optional[np.ndarray] = None
    positions: Optional[Dict[int, np.ndarray]] = None
    payloads: Optional[List[Tuple[int, tuple]]] = None
    degraded_shards: List[int] = field(default_factory=list)
    shard_meta: Optional[Dict[int, Dict[str, object]]] = None
    merge_t0: float = 0.0


@dataclass
class _BatchEntry:
    """One :meth:`SearchEngine.query_batch` request's in-flight state."""

    index: int = -1
    #: resolved before scoring (cache hit / empty candidate set)
    results: Optional[SearchResults] = None
    plan: Optional[_QueryPlan] = None
    #: "bypass"/"off" when the vectors-level cache is not consulted
    cache_mode: Optional[str] = None
    #: vectors-level cache key (None = no put on finish)
    key: Optional[tuple] = None
    generation: int = 0
    #: frame-level wrapper state (None for vector queries)
    frame: Optional[Dict[str, object]] = None


class VideoMatch:
    """One hit of a video-to-video query."""

    def __init__(self, video_id: int, video_name: str, category: Optional[str], distance: float):
        self.video_id = video_id
        self.video_name = video_name
        self.category = category
        self.distance = distance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VideoMatch({self.video_name}, d={self.distance:.4f})"


class SearchEngine:
    """Query execution over a feature store + range index."""

    def __init__(
        self,
        config: SystemConfig,
        store: FeatureStore,
        index: RangeIndex,
        pool: Optional[WorkerPool] = None,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ):
        self.config = config
        self.store = store
        self.index = index
        self._policies = policies
        self.extractors: Dict[str, FeatureExtractor] = {
            name: get_extractor(name) for name in config.features
        }
        self.keyframe_extractor = KeyFrameExtractor(
            threshold=config.keyframe_threshold,
            base_size=config.keyframe_base_size,
        )
        self._pool = pool or WorkerPool(workers=resolve_workers(config.workers))
        #: IVF candidate index (None when ``config.ann`` is off); trained
        #: lazily on the first probe and self-synced against the store
        if config.ann:
            self.ann: Optional[IVFIndex] = IVFIndex(
                store, config.features, n_cells=config.ann_cells, obs=obs
            )
        else:
            self.ann = None
            ann_metrics.register_metrics(obs)  # families scrape at zero
        self._query_cache = QueryCache(config.query_cache_size, obs=obs)
        self._obs = obs
        self._log = log.get_logger(__name__)
        self._m_queries = obs.counter(
            "repro_search_queries_total",
            "Queries executed, by entry point.",
            labelnames=("kind",),
        )
        self._m_query_seconds = obs.histogram(
            "repro_search_seconds",
            "End-to-end query wall time (cache hits included).",
            labelnames=("kind",),
            buckets=obs.latency_buckets,
        )
        self._m_candidates = obs.histogram(
            "repro_search_candidates",
            "Candidates re-ranked per frame/vector query.",
            buckets=_COUNT_BUCKETS,
        )
        self._m_pruning = obs.histogram(
            "repro_search_pruning_ratio",
            "Fraction of the store pruned by the range index before ranking.",
            buckets=_RATIO_BUCKETS,
        )
        self._m_distance_seconds = obs.histogram(
            "repro_search_distance_seconds",
            "Per-feature distance computation time per ranked query.",
            labelnames=("feature",),
        )
        self._m_fusion_seconds = obs.histogram(
            "repro_search_fusion_seconds",
            "Weighted multi-feature fusion time per ranked query.",
        )
    def _prepared_matrix(self, name: str) -> np.ndarray:
        """The feature's prepared full stack, rebuilt when frames change.

        Delegates to :meth:`FeatureStore.prepared_matrix`: the store owns
        the one ``structure_generation``-keyed copy, so engines sharing a
        store share the stack and invalidation can't skew between the
        query cache, the ANN sync, and this cache.
        """
        return self.store.prepared_matrix(name, self.extractors[name])

    def close(self) -> None:
        """Tear down the worker pool (no-op for serial configurations)."""
        self._pool.close()

    def cache_stats(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters of the query-result cache."""
        return self._query_cache.stats()

    def ann_stats(self) -> Optional[Dict[str, int]]:
        """Build/probe counters of the IVF index (None when disabled)."""
        return self.ann.stats.as_dict() if self.ann is not None else None

    def _copy_results(self, results: SearchResults, cache: str) -> SearchResults:
        """Fresh wrapper + per-hit dict copies, so callers can't mutate a
        cached entry through the returned object."""
        hits = [replace(h, per_feature=dict(h.per_feature)) for h in results.hits]
        explain = copy.deepcopy(results.explain)
        if explain is not None:
            explain["cache"] = cache
        return SearchResults(
            hits,
            n_candidates=results.n_candidates,
            n_total=results.n_total,
            degraded=results.degraded,
            degraded_features=list(results.degraded_features),
            degraded_shards=list(results.degraded_shards),
            explain=explain,
        )

    def _cached_results(self, key, builder) -> SearchResults:
        """Run ``builder`` through the query cache (generation-checked)."""
        if not self._query_cache.enabled:
            return builder()
        generation = self.store.generation
        results = self._query_cache.get(key, generation)
        hit = results is not None
        if not hit:
            results = builder()
            self._query_cache.put(key, generation, results)
        return self._copy_results(results, "hit" if hit else "miss")

    def _record_query(
        self,
        kind: str,
        t0: float,
        candidates: Optional[int] = None,
        results: Optional[SearchResults] = None,
        span: Optional[object] = None,
    ) -> None:
        """Per-query bookkeeping shared by the three public entry points."""
        elapsed = time.perf_counter() - t0
        ms = elapsed * 1000.0
        explain = results.explain if results is not None else None
        if explain is not None:
            explain["total_ms"] = round(ms, 3)
        self._m_queries.labels(kind=kind).inc()
        self._m_query_seconds.labels(kind=kind).observe(elapsed)
        if candidates is not None:
            self._m_candidates.observe(candidates)
        # one float compare on the fast path: the disabled slow log
        # advertises an infinite threshold
        if ms >= self._obs.slow_log.threshold_ms:
            self._obs.slow_log.record(
                ms,
                kind=kind,
                trace_id=getattr(span, "trace_id", None),
                candidates=candidates,
                degraded=results.degraded if results is not None else None,
                explain=copy.deepcopy(explain),
            )
        self._log.debug(
            "search.query",
            kind=kind,
            ms=round(ms, 2),
            candidates=candidates,
        )

    # -- frame query ------------------------------------------------------------

    def query_frame(
        self,
        image: Image,
        features: Optional[Sequence[str]] = None,
        top_k: int = 20,
        use_index: Optional[bool] = None,
    ) -> SearchResults:
        """Rank stored key frames against a query frame.

        ``features`` selects the ranking signal: a single name ranks by that
        feature alone; several (or None = all configured) are fused with the
        configured weights.
        """
        names = self._resolve_features(features)
        use_index = self.config.use_index if use_index is None else use_index
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_frame", features=",".join(names), top_k=top_k
        ) as span:
            # with faults armed, a cached answer could outlive the chaos
            # run (or hide it), so chaos queries bypass the result cache
            if not self._query_cache.enabled or self._policies.faults.armed:
                results = self._query_frame(image, names, top_k, use_index)
                if results.explain is not None:
                    results.explain["cache"] = (
                        "bypass" if self._policies.faults.armed else "off"
                    )
            else:  # don't pay the pixel digest when the cache is off
                key = (
                    "frame", digest_array(image.pixels), tuple(names), top_k, use_index
                )
                results = self._cached_results(
                    key, lambda: self._query_frame(image, names, top_k, use_index)
                )
            span.annotate(candidates=results.n_candidates)
        self._record_query("frame", t0, results.n_candidates, results, span)
        return results

    def _query_frame(
        self, image: Image, names: List[str], top_k: int, use_index: bool
    ) -> SearchResults:
        self._policies.check_stage("search.prune")
        if use_index:
            with self._obs.span("search.index.prune"):
                candidate_ids: Optional[List[int]] = sorted(
                    self.index.candidates(image)
                )
            n_total = len(self.store)
            if n_total:
                self._m_pruning.observe(1.0 - len(candidate_ids) / n_total)
        else:
            candidate_ids = None  # the whole store (or the ANN probe below)
        self._policies.check_stage("search.extract")
        with self._obs.span("search.extract"):
            query_vectors, degraded = self._extract_degradable(image, names)
        ann_probed: Optional[bool] = None
        if self.ann is not None and candidate_ids is not None:
            # compose with the range index: a frame must survive both
            with self._obs.span("search.ann.probe"):
                ann_ids = self._ann_probe(query_vectors)
            ann_probed = ann_ids is not None
            if ann_ids is not None:
                wanted = set(ann_ids)
                candidate_ids = [fid for fid in candidate_ids if fid in wanted]
        results = self._vectors_entry(query_vectors, top_k, candidate_ids, None)
        if degraded:
            results.degraded = True
            results.degraded_features = degraded
        explain = results.explain
        if explain is not None:
            explain["kind"] = "frame"
            explain["index"] = {
                "used": bool(use_index),
                "pruning_ratio": round(results.pruning_fraction, 6),
            }
            if ann_probed is not None:  # the frame-level probe decided
                explain["ann"] = {"enabled": True, "probed": ann_probed}
            if degraded:
                explain["degraded_features"] = list(degraded)
        return results

    def _extract_degradable(
        self, image: Image, names: List[str]
    ) -> tuple:
        """Query-feature extraction with per-extractor graceful degradation.

        A failing (or fault-injected) extractor is skipped and recorded;
        the survivors' fusion weights renormalize downstream, so the
        degraded ranking is exactly the ranking the surviving feature
        subset would produce on its own.  Only when *every* extractor
        fails does the query error out.
        """
        query_vectors: Dict[str, FeatureVector] = {}
        degraded: List[str] = []
        last_error: Optional[Exception] = None
        for name in names:
            try:
                self._policies.fire(f"extractor.{name}")
                query_vectors[name] = self.extractors[name].extract(image)
            except DeadlineExceeded:
                raise
            except Exception as exc:
                last_error = exc
                degraded.append(name)
                self._policies.note_degraded(f"extractor.{name}")
                self._log.warning(
                    "search.extractor_degraded",
                    feature=name,
                    error=f"{type(exc).__name__}: {exc}",
                )
        if not query_vectors:
            raise last_error  # nothing survived: degradation is impossible
        return query_vectors, degraded

    def _ann_probe(
        self,
        query_vectors: Dict[str, FeatureVector],
        nprobe: Optional[int] = None,
    ):
        """IVF probe through the ANN circuit breaker.

        Returns the candidate ids, or None for the exact brute-force
        fallback -- taken when the breaker is open or the probe fails
        (the failure feeds the breaker's window).  ``nprobe`` overrides
        ``config.ann_nprobe`` (the serving degrade ladder widens recall
        back out once pressure drops).
        """
        if self.ann is None:
            return None
        if nprobe is None:
            nprobe = self.config.ann_nprobe
        nprobe = max(1, min(int(nprobe), self.config.ann_cells))
        if not self._policies.enabled:
            return self.ann.probe(query_vectors, nprobe)
        breaker = self._policies.ann_breaker
        try:
            breaker.guard()
            self._policies.fire("ann.probe")
            ids = self.ann.probe(query_vectors, nprobe)
        except CircuitOpenError:
            self._policies.note_fallback("ann_brute_force")
            self._log.warning("search.ann_breaker_open", fallback="brute_force")
            return None
        except DeadlineExceeded:
            raise
        except Exception as exc:
            breaker.record_failure()
            self._policies.note_fallback("ann_brute_force")
            self._log.warning(
                "search.ann_probe_failed",
                error=f"{type(exc).__name__}: {exc}",
                fallback="brute_force",
            )
            return None
        breaker.record_success()
        return ids

    def query_with_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int = 20,
        candidate_ids: Optional[Sequence[int]] = None,
        weights: Optional[Dict[str, float]] = None,
    ) -> SearchResults:
        """Rank stored frames against precomputed query feature vectors.

        This is the feedback loop's entry point: relevance feedback moves
        the query vectors and reweights features, then re-ranks without
        needing an actual query image.  ``weights`` overrides the
        configuration's fusion weights; ``candidate_ids`` defaults to the
        whole store (no index pruning -- a moved query vector has no image
        to bucket).
        """
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_vectors", top_k=top_k
        ) as span:
            results = self._vectors_entry(query_vectors, top_k, candidate_ids, weights)
            span.annotate(candidates=results.n_candidates)
        self._record_query("vectors", t0, results.n_candidates, results, span)
        return results

    def _vectors_key(
        self,
        query_vectors: Dict[str, FeatureVector],
        names: List[str],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
        nprobe: Optional[int] = None,
    ) -> tuple:
        """The vectors-level query-cache key (shared serial / batched)."""
        key = (
            "vectors",
            digest_vectors({n: query_vectors[n] for n in names}),
            tuple(names),
            top_k,
            None
            if weights is None
            else tuple(sorted((str(n), float(w)) for n, w in weights.items())),
            None
            if candidate_ids is None
            else digest_array(np.asarray(candidate_ids, dtype=np.int64)),
        )
        # an nprobe override (the serving degrade ladder) computes a
        # different candidate set; only then does it widen the key
        if nprobe is not None:
            key = key + (("nprobe", int(nprobe)),)
        return key

    def _vectors_entry(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
        nprobe: Optional[int] = None,
    ) -> SearchResults:
        """Validation + cache wrapping shared by frame and vector queries."""
        names = [n for n in query_vectors if n in self.extractors]
        if not names:
            raise ValueError("query_vectors holds no configured features")
        # armed faults bypass the cache: a cached answer could outlive
        # (or hide) the chaos run
        if not self._query_cache.enabled or self._policies.faults.armed:
            results = self._query_with_vectors(
                query_vectors, names, top_k, candidate_ids, weights, nprobe
            )
            if results.explain is not None:
                results.explain["cache"] = (
                    "bypass" if self._policies.faults.armed else "off"
                )
            return results
        key = self._vectors_key(
            query_vectors, names, top_k, candidate_ids, weights, nprobe
        )
        return self._cached_results(
            key,
            lambda: self._query_with_vectors(
                query_vectors, names, top_k, candidate_ids, weights, nprobe
            ),
        )

    def _query_with_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        names: List[str],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
        nprobe: Optional[int] = None,
    ) -> SearchResults:
        plan = self._plan_vectors(
            query_vectors, names, top_k, candidate_ids, weights, nprobe
        )
        if plan.empty is not None:
            return plan.empty
        per_feature = self._score_plan(plan)
        return self._rank_plan(plan, per_feature)

    def _plan_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        names: List[str],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
        nprobe: Optional[int] = None,
    ) -> _QueryPlan:
        """Resolve candidates + scoring flags into a :class:`_QueryPlan`."""
        self._policies.check_stage("search.score")
        full_store = False
        ann_probed = False
        if candidate_ids is None:
            if self.ann is not None:
                candidate_ids = self._ann_probe(query_vectors, nprobe)
                ann_probed = candidate_ids is not None
            if candidate_ids is None:
                candidate_ids = self.store.frame_ids()
                full_store = True
        else:
            candidate_ids = list(candidate_ids)
        n_total = len(self.store)
        explain: Dict[str, object] = {
            "kind": "vectors",
            "features": list(names),
            "top_k": int(top_k),
            "n_total": n_total,
            "n_candidates": len(candidate_ids),
            "ann": {"enabled": self.ann is not None, "probed": ann_probed},
        }
        plan = _QueryPlan(
            query_vectors=query_vectors,
            names=list(names),
            top_k=int(top_k),
            weights=weights,
            n_total=n_total,
            explain=explain,
            candidate_ids=candidate_ids,
            full_store=full_store,
        )
        if not candidate_ids:
            plan.empty = SearchResults(
                [], n_candidates=0, n_total=n_total, explain=explain
            )
            return plan
        plan.batched = self.config.batch_distances
        plan.fast = accel.fast_paths_enabled()
        if not plan.batched or not plan.fast:
            # the scalar path needs the records; the reference batched path
            # materializes them too, replicating the pre-acceleration code
            plan.records = [self.store.get(fid) for fid in candidate_ids]
        elif not full_store:
            # one binary search maps candidate ids to stack rows for every
            # feature (preparation commutes with row gathers)
            plan.rows = self.store.matrix_rows(candidate_ids)
        return plan

    def _score_plan(self, plan: _QueryPlan) -> Dict[str, np.ndarray]:
        """Raw per-feature distances over the plan's candidate set.

        Every kernel call is identical to the pre-split code, so serial
        and batched executions of the same query score byte-for-byte the
        same arrays.
        """
        prepared_scoring = plan.batched and plan.fast
        per_feature: Dict[str, np.ndarray] = {}
        distance_ms: Dict[str, float] = {}
        for name in plan.names:
            t_dist = time.perf_counter()
            extractor = self.extractors[name]
            qv = plan.query_vectors[name]
            if prepared_scoring:
                # the id-sorted prepared stack is cached per generation;
                # only subsets pay a gather
                prepared = self._prepared_matrix(name)
                if plan.rows is not None:
                    prepared = prepared[plan.rows]
                per_feature[name] = extractor.batch_distance_prepared(qv, prepared)
            elif plan.batched:
                # reference batched path: raw stack + per-call preprocessing
                matrix = self.store.feature_matrix(
                    name, None if plan.full_store else plan.candidate_ids
                )
                per_feature[name] = extractor.batch_distance(qv, matrix)
            else:
                per_feature[name] = np.array(
                    [
                        extractor.distance(qv, rec.features[name])
                        for rec in plan.records
                    ]
                )
            dt = time.perf_counter() - t_dist
            distance_ms[name] = round(dt * 1000.0, 3)
            self._m_distance_seconds.labels(feature=name).observe(dt)
        plan.distance_ms = distance_ms
        return per_feature

    def _score_plans(self, plans: Sequence[_QueryPlan]) -> List[object]:
        """Score several plans; per-plan exceptions are captured in place.

        The base engine loops :meth:`_score_plan` (the per-query kernels
        already share the generation-cached prepared stacks, so the batch
        win here is amortized per-request overhead); the sharded engine
        overrides this with one scatter per shard covering every plan.
        One poisoned plan must not fail its batchmates: its slot holds
        the exception instead of a distance dict.
        """
        out: List[object] = []
        for plan in plans:
            try:
                out.append(self._score_plan(plan))
            except Exception as exc:  # noqa: BLE001 - isolation by contract
                out.append(exc)
        return out

    def _rank_plan(
        self, plan: _QueryPlan, per_feature: Dict[str, np.ndarray]
    ) -> SearchResults:
        """Fusion + stable top-k over the plan's scored distances."""
        names = plan.names
        weights = plan.weights
        t_fuse = time.perf_counter()
        if len(names) == 1:
            fused = np.asarray(per_feature[names[0]], dtype=np.float64)
        else:
            if weights is None:
                weights = {n: self.config.weight_of(n) for n in names}
            fused = CombinedScorer(FeatureWeights(weights)).fuse(per_feature)
        t_fuse = time.perf_counter() - t_fuse
        plan.explain["timings_ms"] = {
            "distance": plan.distance_ms,
            "fusion": round(t_fuse * 1000.0, 3),
        }
        self._m_fusion_seconds.observe(t_fuse)

        if plan.fast:
            order = _stable_topk(fused, max(0, plan.top_k))
        else:
            order = np.argsort(fused, kind="stable")[: max(0, plan.top_k)]
        hits = []
        for i in order:
            record = (
                plan.records[i]
                if plan.records is not None
                else self.store.get(plan.candidate_ids[i])
            )
            hits.append(
                RetrievalResult(
                    frame_id=record.frame_id,
                    video_id=record.video_id,
                    video_name=record.video_name,
                    frame_name=record.frame_name,
                    category=record.category,
                    distance=float(fused[i]),
                    per_feature={n: float(per_feature[n][i]) for n in names},
                )
            )
        return SearchResults(
            hits,
            n_candidates=len(plan.candidate_ids),
            n_total=plan.n_total,
            explain=plan.explain,
        )

    # -- micro-batched execution -------------------------------------------------

    def query_batch(self, requests: Sequence[QueryRequest]) -> List[object]:
        """Execute several frame/vector queries as one micro-batch.

        Returns a list aligned with ``requests`` whose elements are
        either :class:`SearchResults` or the exception that request
        raised: exceptions are isolated per request, so a poisoned query
        never fails its batchmates.  Rankings are byte-identical to
        running each request through :meth:`query_frame` /
        :meth:`query_with_vectors` serially -- the batch amortizes
        per-request overhead (and the sharded engine's per-shard IPC,
        one scatter per shard per batch) but every per-query distance
        kernel runs with identical inputs, never a stacked multi-query
        kernel whose float reduction order could drift.

        Each request's ``deadline`` (if any) is armed around its
        per-request stages -- cache lookup, pruning, extraction,
        ranking; the shared scoring pass checks each deadline
        immediately before scoring and expires overrun requests without
        dispatching them.
        """
        outcomes: List[object] = [None] * len(requests)
        t0 = time.perf_counter()
        with self._obs.span("search.query_batch", size=len(requests)) as span:
            pending: List[_BatchEntry] = []
            for i, req in enumerate(requests):
                try:
                    with armed_deadline(req.deadline), self._policies.request_scope():
                        self._policies.fire("serving.request")
                        entry = self._prepare_batch_request(req)
                except Exception as exc:  # per-request isolation by contract
                    outcomes[i] = exc
                    continue
                entry.index = i
                if entry.results is not None:
                    outcomes[i] = entry.results
                else:
                    pending.append(entry)
            to_score: List[_BatchEntry] = []
            for entry in pending:
                deadline = requests[entry.index].deadline
                if deadline is not None:
                    try:
                        deadline.check("search.batch_score")
                    except DeadlineExceeded as exc:
                        outcomes[entry.index] = exc
                        continue
                to_score.append(entry)
            scored = self._score_plans([e.plan for e in to_score]) if to_score else []
            for entry, per_feature in zip(to_score, scored):
                if isinstance(per_feature, Exception):
                    outcomes[entry.index] = per_feature
                    continue
                req = requests[entry.index]
                try:
                    with armed_deadline(req.deadline), self._policies.request_scope():
                        outcomes[entry.index] = self._finish_batch_request(
                            entry, per_feature
                        )
                except Exception as exc:  # per-request isolation by contract
                    outcomes[entry.index] = exc
            span.annotate(scored=len(to_score))
            for req, outcome in zip(requests, outcomes):
                if isinstance(outcome, SearchResults):
                    self._record_query(req.kind, t0, outcome.n_candidates, outcome, span)
        return outcomes

    def _prepare_batch_request(self, req: QueryRequest) -> _BatchEntry:
        """Per-request admission: cache lookups, pruning, extraction, plan."""
        if req.image is not None:
            return self._prepare_frame_request(req)
        return self._prepare_vectors_entry(
            req.query_vectors, req.top_k, req.candidate_ids, req.weights, req.nprobe
        )

    def _prepare_frame_request(self, req: QueryRequest) -> _BatchEntry:
        """Frame-query admission, mirroring :meth:`query_frame` stage for stage."""
        names = self._resolve_features(req.features)
        use_index = self.config.use_index if req.use_index is None else req.use_index
        bypass = not self._query_cache.enabled or self._policies.faults.armed
        frame_key: Optional[tuple] = None
        generation = 0
        if not bypass:
            generation = self.store.generation
            frame_key = (
                "frame",
                digest_array(req.image.pixels),
                tuple(names),
                req.top_k,
                use_index,
            )
            if req.nprobe is not None:
                frame_key = frame_key + (("nprobe", int(req.nprobe)),)
            cached = self._query_cache.get(frame_key, generation)
            if cached is not None:
                return _BatchEntry(results=self._copy_results(cached, "hit"))
        self._policies.check_stage("search.prune")
        if use_index:
            with self._obs.span("search.index.prune"):
                candidate_ids: Optional[List[int]] = sorted(
                    self.index.candidates(req.image)
                )
            n_total = len(self.store)
            if n_total:
                self._m_pruning.observe(1.0 - len(candidate_ids) / n_total)
        else:
            candidate_ids = None
        self._policies.check_stage("search.extract")
        with self._obs.span("search.extract"):
            query_vectors, degraded = self._extract_degradable(req.image, names)
        ann_probed: Optional[bool] = None
        if self.ann is not None and candidate_ids is not None:
            with self._obs.span("search.ann.probe"):
                ann_ids = self._ann_probe(query_vectors, req.nprobe)
            ann_probed = ann_ids is not None
            if ann_ids is not None:
                wanted = set(ann_ids)
                candidate_ids = [fid for fid in candidate_ids if fid in wanted]
        entry = self._prepare_vectors_entry(
            query_vectors, req.top_k, candidate_ids, None, req.nprobe
        )
        frame_state: Dict[str, object] = {
            "key": frame_key,
            "generation": generation,
            "degraded": degraded,
            "use_index": use_index,
            "ann_probed": ann_probed,
            "mode": (
                ("bypass" if self._policies.faults.armed else "off")
                if bypass
                else None
            ),
        }
        if entry.results is not None:
            # the inner vectors entry resolved (cache hit / no candidates):
            # apply the frame-level wrapper now, nothing left to score
            entry.results = self._finish_frame_entry(frame_state, entry.results)
        else:
            entry.frame = frame_state
        return entry

    def _prepare_vectors_entry(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int,
        candidate_ids: Optional[Sequence[int]],
        weights: Optional[Dict[str, float]],
        nprobe: Optional[int] = None,
    ) -> _BatchEntry:
        """Deferred-scoring twin of :meth:`_vectors_entry`."""
        names = [n for n in query_vectors if n in self.extractors]
        if not names:
            raise ValueError("query_vectors holds no configured features")
        entry = _BatchEntry()
        if not self._query_cache.enabled or self._policies.faults.armed:
            entry.cache_mode = "bypass" if self._policies.faults.armed else "off"
            plan = self._plan_vectors(
                query_vectors, names, top_k, candidate_ids, weights, nprobe
            )
            if plan.empty is not None:
                if plan.empty.explain is not None:
                    plan.empty.explain["cache"] = entry.cache_mode
                entry.results = plan.empty
            else:
                entry.plan = plan
            return entry
        entry.generation = self.store.generation
        entry.key = self._vectors_key(
            query_vectors, names, top_k, candidate_ids, weights, nprobe
        )
        cached = self._query_cache.get(entry.key, entry.generation)
        if cached is not None:
            entry.results = self._copy_results(cached, "hit")
            entry.key = None
            return entry
        plan = self._plan_vectors(
            query_vectors, names, top_k, candidate_ids, weights, nprobe
        )
        if plan.empty is not None:
            self._query_cache.put(entry.key, entry.generation, plan.empty)
            entry.results = self._copy_results(plan.empty, "miss")
            entry.key = None
        else:
            entry.plan = plan
        return entry

    def _finish_batch_request(
        self, entry: _BatchEntry, per_feature: Dict[str, np.ndarray]
    ) -> SearchResults:
        """Rank + cache-put + wrapper stages after the shared scoring pass."""
        results = self._rank_plan(entry.plan, per_feature)
        results = self._finish_vectors_entry(entry, results)
        if entry.frame is not None:
            results = self._finish_frame_entry(entry.frame, results)
        return results

    def _finish_vectors_entry(
        self, entry: _BatchEntry, results: SearchResults
    ) -> SearchResults:
        if entry.cache_mode is not None:
            if results.explain is not None:
                results.explain["cache"] = entry.cache_mode
            return results
        self._query_cache.put(entry.key, entry.generation, results)
        return self._copy_results(results, "miss")

    def _finish_frame_entry(
        self, frame_state: Dict[str, object], results: SearchResults
    ) -> SearchResults:
        """Frame-level annotations + frame-key cache put (mirrors
        :meth:`_query_frame`'s tail and :meth:`query_frame`'s wrapping)."""
        degraded = frame_state["degraded"]
        if degraded:
            results.degraded = True
            results.degraded_features = degraded
        explain = results.explain
        if explain is not None:
            explain["kind"] = "frame"
            explain["index"] = {
                "used": bool(frame_state["use_index"]),
                "pruning_ratio": round(results.pruning_fraction, 6),
            }
            if frame_state["ann_probed"] is not None:
                explain["ann"] = {
                    "enabled": True,
                    "probed": frame_state["ann_probed"],
                }
            if degraded:
                explain["degraded_features"] = list(degraded)
        if frame_state["key"] is not None:
            self._query_cache.put(
                frame_state["key"], frame_state["generation"], results
            )
            results = self._copy_results(results, "miss")
        elif explain is not None:
            explain["cache"] = frame_state["mode"]
        return results

    # -- video query ---------------------------------------------------------------

    def query_video(
        self,
        video: Union[SyntheticVideo, Sequence[Image]],
        features: Optional[Sequence[str]] = None,
        top_k: int = 10,
    ) -> List[VideoMatch]:
        """Rank stored videos against a query clip via DP sequence alignment."""
        frames = list(video.frames) if isinstance(video, SyntheticVideo) else list(video)
        if not frames:
            raise ValueError("query video has no frames")
        t0 = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "search.query_video", frames=len(frames), top_k=top_k
        ) as span:
            matches = self._query_video(frames, features, top_k)
        self._record_query("video", t0, span=span)
        return matches

    def _query_video(
        self,
        frames: List[Image],
        features: Optional[Sequence[str]],
        top_k: int,
    ) -> List[VideoMatch]:
        names = self._resolve_features(features)
        self._policies.check_stage("search.keyframes")
        key_frames = [f for _i, f in self.keyframe_extractor.extract(frames)]
        # per-key-frame extraction is the query-side CPU hot spot; fan it
        # out over the pool (order-preserving, so results are unchanged)
        self._policies.check_stage("search.extract")
        extract = partial(
            _extract_query_features, extractors=self.extractors, names=names
        )
        query_seq = self._pool.map(extract, key_frames)
        self._policies.check_stage("search.score")

        video_ids = self.store.video_ids()
        if not video_ids:
            return []

        # Pairwise per-feature distances between the query sequence and the
        # *entire* stored frame population, so min-max normalization is
        # global: a video whose frames are all far from the query must keep
        # a large cost, not normalize down to zero.
        all_records: List[FrameRecord] = []
        spans: Dict[int, slice] = {}
        for video_id in video_ids:
            records = self.store.frames_of_video(video_id)
            spans[video_id] = slice(len(all_records), len(all_records) + len(records))
            all_records.extend(records)

        nq, nr = len(query_seq), len(all_records)
        record_ids = [rec.frame_id for rec in all_records]
        combined = np.zeros((nq, nr))
        total_weight = 0.0
        for name in names:
            extractor = self.extractors[name]
            m = np.empty((nq, nr))
            if self.config.batch_distances:
                matrix = self.store.feature_matrix(name, record_ids)
                for i, qf in enumerate(query_seq):
                    m[i, :] = extractor.batch_distance(qf[name], matrix)
            else:
                for i, qf in enumerate(query_seq):
                    for j, rec in enumerate(all_records):
                        m[i, j] = extractor.distance(qf[name], rec.features[name])
            w = self.config.weight_of(name)
            combined += w * normalize_scores(m.ravel()).reshape(nq, nr)
            total_weight += w
        if total_weight > 0:
            combined /= total_weight

        matches: List[VideoMatch] = []
        for video_id in video_ids:
            span = spans[video_id]
            if span.stop == span.start:
                continue
            records = all_records[span]
            distance = self._sequence_distance(combined[:, span])
            matches.append(
                VideoMatch(
                    video_id=video_id,
                    video_name=records[0].video_name,
                    category=records[0].category,
                    distance=distance,
                )
            )
        matches = self._blend_motion(frames, matches)
        matches.sort(key=lambda m: m.distance)
        return matches[: max(0, top_k)]

    def _blend_motion(self, frames: Sequence[Image], matches: List["VideoMatch"]) -> List["VideoMatch"]:
        """Mix the clip-level motion distance into the appearance ranking.

        Active only when ``config.video_motion_weight > 0`` and the stored
        videos carry motion descriptors; both components are min-max
        normalized over the match set before the weighted blend.
        """
        weight = self.config.video_motion_weight
        if weight <= 0 or len(matches) < 2 or len(frames) < 2:
            return matches
        from repro.similarity.measures import canberra
        from repro.video.motion import motion_activity

        stored = [self.store.video_motion(m.video_id) for m in matches]
        if any(s is None for s in stored):
            return matches
        query_motion = motion_activity(frames)
        motion_d = np.array([canberra(query_motion, s.values) for s in stored])
        appearance_d = np.array([m.distance for m in matches])
        blended = (
            normalize_scores(appearance_d) + weight * normalize_scores(motion_d)
        ) / (1.0 + weight)
        return [
            VideoMatch(m.video_id, m.video_name, m.category, float(d))
            for m, d in zip(matches, blended)
        ]

    def _sequence_distance(self, cost_matrix: np.ndarray) -> float:
        """DP distance over a precomputed (fused, globally-normalized) matrix."""
        nq, nr = cost_matrix.shape
        indices_q = list(range(nq))
        indices_r = list(range(nr))
        def cost(i: int, j: int) -> float:
            return float(cost_matrix[i, j])

        if self.config.sequence_method == "dtw":
            return dtw_distance(indices_q, indices_r, cost)
        return sequence_similarity(
            indices_q, indices_r, cost, method="align",
            gap_penalty=self.config.sequence_gap_penalty,
        )

    # -- helpers -------------------------------------------------------------------------

    def _resolve_features(self, features: Optional[Sequence[str]]) -> List[str]:
        if features is None:
            return list(self.config.features)
        if isinstance(features, str):
            features = [features]
        names = list(features)
        if not names:
            raise ValueError("features must not be empty")
        unknown = [n for n in names if n not in self.extractors]
        if unknown:
            raise ValueError(
                f"features {unknown} are not configured; active: {sorted(self.extractors)}"
            )
        return names
