"""The user-side search engine (the right half of the Fig. 3 DFD).

Frame queries: extract the query frame's features, prune candidates with
the range index, compute per-feature distances, min-max normalize each
feature over the candidate set, and rank by the weighted sum (§5's
"combined" approach) or by one feature alone (the individual Table 1
columns).

Video queries: key-frame the query clip and align its feature sequence
against every stored video's sequence with the paper's dynamic-programming
similarity.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import SystemConfig
from repro.core.results import RetrievalResult, SearchResults
from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.imaging.image import Image
from repro.indexing.tree import RangeIndex
from repro.runtime import WorkerPool, resolve_workers
from repro.similarity.dp import dtw_distance, sequence_similarity
from repro.similarity.fusion import CombinedScorer, FeatureWeights, normalize_scores
from repro.video.generator import SyntheticVideo
from repro.video.keyframes import KeyFrameExtractor

__all__ = ["SearchEngine", "VideoMatch"]


def _extract_query_features(
    frame: Image,
    extractors: Dict[str, FeatureExtractor],
    names: Sequence[str],
) -> Dict[str, FeatureVector]:
    """One query key frame's feature vectors (worker-process safe)."""
    return {name: extractors[name].extract(frame) for name in names}


class VideoMatch:
    """One hit of a video-to-video query."""

    def __init__(self, video_id: int, video_name: str, category: Optional[str], distance: float):
        self.video_id = video_id
        self.video_name = video_name
        self.category = category
        self.distance = distance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VideoMatch({self.video_name}, d={self.distance:.4f})"


class SearchEngine:
    """Query execution over a feature store + range index."""

    def __init__(
        self,
        config: SystemConfig,
        store: FeatureStore,
        index: RangeIndex,
        pool: Optional[WorkerPool] = None,
    ):
        self.config = config
        self.store = store
        self.index = index
        self.extractors: Dict[str, FeatureExtractor] = {
            name: get_extractor(name) for name in config.features
        }
        self.keyframe_extractor = KeyFrameExtractor(
            threshold=config.keyframe_threshold,
            base_size=config.keyframe_base_size,
        )
        self._pool = pool or WorkerPool(workers=resolve_workers(config.workers))

    def close(self) -> None:
        """Tear down the worker pool (no-op for serial configurations)."""
        self._pool.close()

    # -- frame query ------------------------------------------------------------

    def query_frame(
        self,
        image: Image,
        features: Optional[Sequence[str]] = None,
        top_k: int = 20,
        use_index: Optional[bool] = None,
    ) -> SearchResults:
        """Rank stored key frames against a query frame.

        ``features`` selects the ranking signal: a single name ranks by that
        feature alone; several (or None = all configured) are fused with the
        configured weights.
        """
        names = self._resolve_features(features)
        use_index = self.config.use_index if use_index is None else use_index

        if use_index:
            candidate_ids = sorted(self.index.candidates(image))
        else:
            candidate_ids = self.store.frame_ids()
        query_vectors = {name: self.extractors[name].extract(image) for name in names}
        return self.query_with_vectors(query_vectors, top_k=top_k, candidate_ids=candidate_ids)

    def query_with_vectors(
        self,
        query_vectors: Dict[str, FeatureVector],
        top_k: int = 20,
        candidate_ids: Optional[Sequence[int]] = None,
        weights: Optional[Dict[str, float]] = None,
    ) -> SearchResults:
        """Rank stored frames against precomputed query feature vectors.

        This is the feedback loop's entry point: relevance feedback moves
        the query vectors and reweights features, then re-ranks without
        needing an actual query image.  ``weights`` overrides the
        configuration's fusion weights; ``candidate_ids`` defaults to the
        whole store (no index pruning -- a moved query vector has no image
        to bucket).
        """
        names = [n for n in query_vectors if n in self.extractors]
        if not names:
            raise ValueError("query_vectors holds no configured features")
        if candidate_ids is None:
            candidate_ids = self.store.frame_ids()
        n_total = len(self.store)
        if not candidate_ids:
            return SearchResults([], n_candidates=0, n_total=n_total)

        records = [self.store.get(fid) for fid in candidate_ids]
        per_feature: Dict[str, np.ndarray] = {}
        for name in names:
            extractor = self.extractors[name]
            qv = query_vectors[name]
            if self.config.batch_distances:
                matrix = self.store.feature_matrix(name, candidate_ids)
                per_feature[name] = extractor.batch_distance(qv, matrix)
            else:
                per_feature[name] = np.array(
                    [extractor.distance(qv, rec.features[name]) for rec in records]
                )

        if len(names) == 1:
            fused = np.asarray(per_feature[names[0]], dtype=np.float64)
        else:
            if weights is None:
                weights = {n: self.config.weight_of(n) for n in names}
            fused = CombinedScorer(FeatureWeights(weights)).fuse(per_feature)

        order = np.argsort(fused, kind="stable")[: max(0, top_k)]
        hits = [
            RetrievalResult(
                frame_id=records[i].frame_id,
                video_id=records[i].video_id,
                video_name=records[i].video_name,
                frame_name=records[i].frame_name,
                category=records[i].category,
                distance=float(fused[i]),
                per_feature={n: float(per_feature[n][i]) for n in names},
            )
            for i in order
        ]
        return SearchResults(hits, n_candidates=len(candidate_ids), n_total=n_total)

    # -- video query ---------------------------------------------------------------

    def query_video(
        self,
        video: Union[SyntheticVideo, Sequence[Image]],
        features: Optional[Sequence[str]] = None,
        top_k: int = 10,
    ) -> List[VideoMatch]:
        """Rank stored videos against a query clip via DP sequence alignment."""
        frames = list(video.frames) if isinstance(video, SyntheticVideo) else list(video)
        if not frames:
            raise ValueError("query video has no frames")
        names = self._resolve_features(features)
        key_frames = [f for _i, f in self.keyframe_extractor.extract(frames)]
        # per-key-frame extraction is the query-side CPU hot spot; fan it
        # out over the pool (order-preserving, so results are unchanged)
        extract = partial(
            _extract_query_features, extractors=self.extractors, names=names
        )
        query_seq = self._pool.map(extract, key_frames)

        video_ids = self.store.video_ids()
        if not video_ids:
            return []

        # Pairwise per-feature distances between the query sequence and the
        # *entire* stored frame population, so min-max normalization is
        # global: a video whose frames are all far from the query must keep
        # a large cost, not normalize down to zero.
        all_records: List[FrameRecord] = []
        spans: Dict[int, slice] = {}
        for video_id in video_ids:
            records = self.store.frames_of_video(video_id)
            spans[video_id] = slice(len(all_records), len(all_records) + len(records))
            all_records.extend(records)

        nq, nr = len(query_seq), len(all_records)
        record_ids = [rec.frame_id for rec in all_records]
        combined = np.zeros((nq, nr))
        total_weight = 0.0
        for name in names:
            extractor = self.extractors[name]
            m = np.empty((nq, nr))
            if self.config.batch_distances:
                matrix = self.store.feature_matrix(name, record_ids)
                for i, qf in enumerate(query_seq):
                    m[i, :] = extractor.batch_distance(qf[name], matrix)
            else:
                for i, qf in enumerate(query_seq):
                    for j, rec in enumerate(all_records):
                        m[i, j] = extractor.distance(qf[name], rec.features[name])
            w = self.config.weight_of(name)
            combined += w * normalize_scores(m.ravel()).reshape(nq, nr)
            total_weight += w
        if total_weight > 0:
            combined /= total_weight

        matches: List[VideoMatch] = []
        for video_id in video_ids:
            span = spans[video_id]
            if span.stop == span.start:
                continue
            records = all_records[span]
            distance = self._sequence_distance(combined[:, span])
            matches.append(
                VideoMatch(
                    video_id=video_id,
                    video_name=records[0].video_name,
                    category=records[0].category,
                    distance=distance,
                )
            )
        matches = self._blend_motion(frames, matches)
        matches.sort(key=lambda m: m.distance)
        return matches[: max(0, top_k)]

    def _blend_motion(self, frames: Sequence[Image], matches: List["VideoMatch"]) -> List["VideoMatch"]:
        """Mix the clip-level motion distance into the appearance ranking.

        Active only when ``config.video_motion_weight > 0`` and the stored
        videos carry motion descriptors; both components are min-max
        normalized over the match set before the weighted blend.
        """
        weight = self.config.video_motion_weight
        if weight <= 0 or len(matches) < 2 or len(frames) < 2:
            return matches
        from repro.similarity.measures import canberra
        from repro.video.motion import motion_activity

        stored = [self.store.video_motion(m.video_id) for m in matches]
        if any(s is None for s in stored):
            return matches
        query_motion = motion_activity(frames)
        motion_d = np.array([canberra(query_motion, s.values) for s in stored])
        appearance_d = np.array([m.distance for m in matches])
        blended = (
            normalize_scores(appearance_d) + weight * normalize_scores(motion_d)
        ) / (1.0 + weight)
        return [
            VideoMatch(m.video_id, m.video_name, m.category, float(d))
            for m, d in zip(matches, blended)
        ]

    def _sequence_distance(self, cost_matrix: np.ndarray) -> float:
        """DP distance over a precomputed (fused, globally-normalized) matrix."""
        nq, nr = cost_matrix.shape
        indices_q = list(range(nq))
        indices_r = list(range(nr))
        def cost(i: int, j: int) -> float:
            return float(cost_matrix[i, j])

        if self.config.sequence_method == "dtw":
            return dtw_distance(indices_q, indices_r, cost)
        return sequence_similarity(
            indices_q, indices_r, cost, method="align",
            gap_penalty=self.config.sequence_gap_penalty,
        )

    # -- helpers -------------------------------------------------------------------------

    def _resolve_features(self, features: Optional[Sequence[str]]) -> List[str]:
        if features is None:
            return list(self.config.features)
        if isinstance(features, str):
            features = [features]
        names = list(features)
        if not names:
            raise ValueError("features must not be empty")
        unknown = [n for n in names if n not in self.extractors]
        if unknown:
            raise ValueError(
                f"features {unknown} are not configured; active: {sorted(self.extractors)}"
            )
        return names
