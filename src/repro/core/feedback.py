"""Relevance feedback (extension).

The paper frames retrieval as interactive -- "help users to retrieve
desired video ... through user interactions" -- and cites interactive
user-oriented retrieval as related work, but implements a single-shot
query.  This extension closes the loop with the classic Rocchio scheme:

1. the user runs a query and marks some results relevant / irrelevant;
2. **query-point movement**: each feature's query vector moves toward the
   centroid of marked-relevant vectors and away from the marked-irrelevant
   centroid (``q' = alpha*q + beta*mean(R) - gamma*mean(N)``, clipped at 0
   because all our feature vectors are non-negative by construction);
3. **feature reweighting**: features that separate the marked sets well
   (irrelevant examples far, relevant examples close) gain weight.

Usage::

    session = FeedbackSession(system, query_image)
    results = session.search(top_k=20)
    session.mark_relevant(results[0].frame_id, results[2].frame_id)
    session.mark_irrelevant(results[5].frame_id)
    improved = session.refine(top_k=20)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.results import SearchResults
from repro.features.base import FeatureVector
from repro.imaging.image import Image

__all__ = ["FeedbackSession", "rocchio_move", "separation_weights"]


def rocchio_move(
    query: FeatureVector,
    relevant: List[FeatureVector],
    irrelevant: List[FeatureVector],
    alpha: float = 1.0,
    beta: float = 0.75,
    gamma: float = 0.25,
) -> FeatureVector:
    """One Rocchio update of a single feature vector (clipped at zero)."""
    moved = alpha * query.values.copy()
    if relevant:
        moved = moved + beta * np.mean([v.values for v in relevant], axis=0)
    if irrelevant:
        moved = moved - gamma * np.mean([v.values for v in irrelevant], axis=0)
    return FeatureVector(kind=query.kind, values=np.maximum(moved, 0.0), tag=query.tag)


def separation_weights(
    per_feature_relevant: Dict[str, List[float]],
    per_feature_irrelevant: Dict[str, List[float]],
    floor: float = 0.1,
    ceiling: float = 10.0,
) -> Dict[str, float]:
    """Weight each feature by how well it separates the marked sets.

    ``weight = mean(irrelevant distances) / mean(relevant distances)`` --
    a feature whose relevant examples sit close and irrelevant ones far
    earns weight > 1.  With only one marked class the weight stays 1.
    Weights are clipped into ``[floor, ceiling]``.
    """
    weights: Dict[str, float] = {}
    for name in per_feature_relevant:
        rel = per_feature_relevant[name]
        irr = per_feature_irrelevant.get(name, [])
        if not rel or not irr:
            weights[name] = 1.0
            continue
        mean_rel = float(np.mean(rel))
        mean_irr = float(np.mean(irr))
        if mean_rel < 1e-12:
            weights[name] = ceiling
        else:
            weights[name] = float(np.clip(mean_irr / mean_rel, floor, ceiling))
    return weights


class FeedbackSession:
    """An interactive query: search, mark, refine, repeat."""

    def __init__(self, system, query_image: Image, features: Optional[List[str]] = None):
        self.system = system
        engine = system._engine
        self._engine = engine
        names = engine._resolve_features(features)
        self.query_vectors: Dict[str, FeatureVector] = {
            name: engine.extractors[name].extract(query_image) for name in names
        }
        self.weights: Dict[str, float] = {
            name: system.config.weight_of(name) for name in names
        }
        self._relevant: Set[int] = set()
        self._irrelevant: Set[int] = set()
        self.rounds = 0

    # -- marking ---------------------------------------------------------------

    def mark_relevant(self, *frame_ids: int) -> None:
        for fid in frame_ids:
            if fid not in self._engine.store:
                raise KeyError(f"no stored frame {fid}")
            self._irrelevant.discard(fid)
            self._relevant.add(fid)

    def mark_irrelevant(self, *frame_ids: int) -> None:
        for fid in frame_ids:
            if fid not in self._engine.store:
                raise KeyError(f"no stored frame {fid}")
            self._relevant.discard(fid)
            self._irrelevant.add(fid)

    @property
    def n_marked(self) -> int:
        return len(self._relevant) + len(self._irrelevant)

    # -- querying -----------------------------------------------------------------

    def search(self, top_k: int = 20) -> SearchResults:
        """Rank with the current (possibly moved) query state."""
        return self._engine.query_with_vectors(
            self.query_vectors, top_k=top_k, weights=dict(self.weights)
        )

    def refine(
        self,
        top_k: int = 20,
        alpha: float = 1.0,
        beta: float = 0.75,
        gamma: float = 0.25,
        reweight: bool = True,
    ) -> SearchResults:
        """Apply one Rocchio round using the current marks, then re-rank."""
        if not self._relevant and not self._irrelevant:
            raise ValueError("refine() needs at least one marked result")
        store = self._engine.store
        rel_records = [store.get(fid) for fid in sorted(self._relevant)]
        irr_records = [store.get(fid) for fid in sorted(self._irrelevant)]

        per_rel: Dict[str, List[float]] = {}
        per_irr: Dict[str, List[float]] = {}
        for name, query in self.query_vectors.items():
            extractor = self._engine.extractors[name]
            per_rel[name] = [extractor.distance(query, r.features[name]) for r in rel_records]
            per_irr[name] = [extractor.distance(query, r.features[name]) for r in irr_records]
            self.query_vectors[name] = rocchio_move(
                query,
                [r.features[name] for r in rel_records],
                [r.features[name] for r in irr_records],
                alpha=alpha,
                beta=beta,
                gamma=gamma,
            )
        if reweight:
            learned = separation_weights(per_rel, per_irr)
            self.weights = {
                name: self.weights[name] * learned[name] for name in self.weights
            }
        self.rounds += 1
        return self.search(top_k=top_k)
