"""Query-result cache.

Retrieval workloads repeat themselves: the same query frame is re-issued
while a user tweaks ``top_k`` or feature weights, and relevance-feedback
loops re-rank from the same starting vectors.  This LRU keys results on a
content digest of the query (pixel bytes or feature-vector bytes, plus
every parameter that changes the ranking) **and the store's mutation
generation**: any ingest, delete, or rename bumps the generation and the
whole cache drops on the next access, so a hit can never serve stale
results.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

import numpy as np

from repro.obs import NULL_OBS, Obs

__all__ = ["QueryCache", "digest_array", "digest_vectors"]


def digest_array(array: np.ndarray) -> str:
    """Content digest of an array (dtype- and shape-sensitive)."""
    a = np.ascontiguousarray(array)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def digest_vectors(query_vectors: Dict[str, Any]) -> str:
    """Content digest of a ``name -> FeatureVector`` mapping (order-free)."""
    h = hashlib.blake2b(digest_size=16)
    for name in sorted(query_vectors):
        values = np.ascontiguousarray(
            np.asarray(query_vectors[name].values, dtype=np.float64)
        )
        h.update(name.encode())
        h.update(values.tobytes())
    return h.hexdigest()


class QueryCache:
    """A small LRU of query results, invalidated by store generation.

    ``get``/``put`` take the current generation; when it differs from the
    one the cached entries were stored under, everything is dropped first.
    ``max_entries <= 0`` disables the cache (every ``get`` misses, ``put``
    is a no-op), so callers don't need a separate code path.
    """

    def __init__(self, max_entries: int = 256, obs: Obs = NULL_OBS):
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._generation: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self._m_requests = obs.counter(
            "repro_cache_requests_total",
            "Query-result cache lookups by outcome.",
            labelnames=("result",),
        )
        self._m_hit = self._m_requests.labels(result="hit")
        self._m_miss = self._m_requests.labels(result="miss")
        self._m_invalidations = obs.counter(
            "repro_cache_invalidations_total",
            "Whole-cache drops caused by store mutations.",
        )
        self._m_evictions = obs.counter(
            "repro_cache_evictions_total", "LRU evictions at capacity."
        )
        self._m_entries = obs.gauge(
            "repro_cache_entries", "Entries currently cached."
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def _check_generation(self, generation: int) -> None:
        if self._generation != generation:
            if self._entries:
                self.invalidations += 1
                self._m_invalidations.inc()
                self._entries.clear()
                self._m_entries.set(0)
            self._generation = generation

    def get(self, key: Hashable, generation: int) -> Optional[Any]:
        if not self.enabled:
            self.misses += 1
            self._m_miss.inc()
            return None
        self._check_generation(generation)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_miss.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._m_hit.inc()
        return entry

    def put(self, key: Hashable, generation: int, value: Any) -> None:
        if not self.enabled:
            return
        self._check_generation(generation)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._m_evictions.inc()
        self._m_entries.set(len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._generation = None
        self._m_entries.set(0)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
        }
