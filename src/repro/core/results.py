"""Search result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["RetrievalResult", "SearchResults"]


@dataclass(frozen=True)
class RetrievalResult:
    """One ranked hit: a key frame and the video it came from.

    ``distance`` is the fused (or single-feature) dissimilarity used for
    ranking; ``per_feature`` holds the raw per-feature distances.
    """

    frame_id: int
    video_id: int
    video_name: str
    frame_name: str
    category: Optional[str]
    distance: float
    per_feature: Dict[str, float] = field(default_factory=dict)


class SearchResults:
    """An ordered result list with convenience accessors.

    ``degraded`` is True when the query completed by gracefully dropping
    part of the pipeline (e.g. a faulting extractor was skipped and the
    fusion weights renormalized over the survivors);
    ``degraded_features`` names the skipped extractors and
    ``degraded_shards`` the shard indices a scatter-gather coordinator
    dropped from the ranking (their corpus slice is simply absent).
    """

    def __init__(
        self,
        hits: List[RetrievalResult],
        n_candidates: int,
        n_total: int,
        degraded: bool = False,
        degraded_features: Optional[Sequence[str]] = None,
        degraded_shards: Optional[Sequence[int]] = None,
        explain: Optional[Dict[str, object]] = None,
    ):
        self.hits = list(hits)
        #: how many frames survived index pruning and were actually scored
        self.n_candidates = n_candidates
        #: corpus size at query time
        self.n_total = n_total
        #: the answer is valid but computed with reduced fidelity
        self.degraded = (
            bool(degraded) or bool(degraded_features) or bool(degraded_shards)
        )
        #: extractors skipped after repeated failure (fusion renormalized)
        self.degraded_features = list(degraded_features or [])
        #: shards whose partition is missing from this ranking
        self.degraded_shards = list(degraded_shards or [])
        #: how the answer was computed: candidate counts, pruning ratio,
        #: per-stage (and, sharded, per-shard) timings, cache/ANN decisions
        #: (JSON-safe; surfaced by ``?explain=1`` and ``repro search --explain``)
        self.explain = explain

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[RetrievalResult]:
        return iter(self.hits)

    def __getitem__(self, i):
        return self.hits[i]

    def frame_ids(self) -> List[int]:
        return [h.frame_id for h in self.hits]

    def video_ids(self) -> List[int]:
        """Video ids in rank order, first occurrence only."""
        seen, out = set(), []
        for h in self.hits:
            if h.video_id not in seen:
                seen.add(h.video_id)
                out.append(h.video_id)
        return out

    def categories(self) -> List[Optional[str]]:
        return [h.category for h in self.hits]

    @property
    def pruning_fraction(self) -> float:
        """Fraction of the corpus skipped thanks to the index."""
        if self.n_total == 0:
            return 0.0
        return 1.0 - self.n_candidates / self.n_total

    def to_rows(self) -> List[Dict[str, object]]:
        """Plain dicts (for printing / JSON)."""
        return [
            {
                "rank": i + 1,
                "frame_id": h.frame_id,
                "video": h.video_name,
                "category": h.category,
                "distance": round(h.distance, 6),
            }
            for i, h in enumerate(self.hits)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(f"{h.video_name}:{h.distance:.3f}" for h in self.hits[:3])
        return f"SearchResults({len(self.hits)} hits; top: {head})"
