"""In-memory feature store mirroring the KEY_FRAMES table.

Search must compare the query against every candidate's feature vectors;
re-parsing feature strings out of the DB on every query would dominate
latency, so the system keeps this write-through cache: ingest updates it
and the DB together, and on open it is rebuilt from the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.catalog import FEATURE_COLUMNS
from repro.db.engine import Database
from repro.features.base import FeatureVector
from repro.indexing.rangefinder import Bucket

__all__ = ["FrameRecord", "FeatureStore"]


@dataclass(frozen=True)
class FrameRecord:
    """One key frame's metadata + parsed feature vectors."""

    frame_id: int
    video_id: int
    video_name: str
    frame_name: str
    category: Optional[str]
    bucket: Bucket
    features: Dict[str, FeatureVector] = field(default_factory=dict)


class FeatureStore:
    """frame_id -> FrameRecord, with per-video grouping."""

    def __init__(self):
        self._frames: Dict[int, FrameRecord] = {}
        self._by_video: Dict[int, List[int]] = {}
        # clip-level motion descriptors (extension; see repro.video.motion)
        self._video_motion: Dict[int, FeatureVector] = {}

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, frame_id: int) -> bool:
        return frame_id in self._frames

    def get(self, frame_id: int) -> FrameRecord:
        return self._frames[frame_id]

    def frame_ids(self) -> List[int]:
        return sorted(self._frames)

    def video_ids(self) -> List[int]:
        return sorted(self._by_video)

    def frames_of_video(self, video_id: int) -> List[FrameRecord]:
        """The video's key frames in frame-id (i.e. temporal) order."""
        return [self._frames[i] for i in sorted(self._by_video.get(video_id, []))]

    # -- mutation -------------------------------------------------------------

    def add(self, record: FrameRecord) -> None:
        if record.frame_id in self._frames:
            raise KeyError(f"frame id {record.frame_id} already in store")
        self._frames[record.frame_id] = record
        self._by_video.setdefault(record.video_id, []).append(record.frame_id)

    def remove_video(self, video_id: int) -> List[int]:
        """Drop every frame of a video; returns the removed frame ids."""
        frame_ids = self._by_video.pop(video_id, [])
        for fid in frame_ids:
            del self._frames[fid]
        self._video_motion.pop(video_id, None)
        return frame_ids

    def clear(self) -> None:
        self._frames.clear()
        self._by_video.clear()
        self._video_motion.clear()

    # -- clip-level motion ------------------------------------------------------

    def set_video_motion(self, video_id: int, descriptor: FeatureVector) -> None:
        self._video_motion[video_id] = descriptor

    def video_motion(self, video_id: int) -> Optional[FeatureVector]:
        return self._video_motion.get(video_id)

    # -- rebuild -----------------------------------------------------------------

    def rebuild_from_db(self, db: Database, feature_names: Sequence[str]) -> None:
        """Repopulate from VIDEO_STORE + KEY_FRAMES (used by ``open``)."""
        self.clear()
        videos = {
            row["V_ID"]: row
            for row in db.execute(
                "SELECT V_ID, V_NAME, CATEGORY, MOTION FROM VIDEO_STORE"
            ).rows
        }
        for v_id, row in videos.items():
            if row.get("MOTION"):
                self._video_motion[int(v_id)] = FeatureVector.from_string(
                    "motion", row["MOTION"]
                )
        wanted = [(name, FEATURE_COLUMNS[name]) for name in feature_names]
        for row in db.execute("SELECT * FROM KEY_FRAMES").rows:
            features: Dict[str, FeatureVector] = {}
            for name, column in wanted:
                text = row.get(column)
                if text:
                    features[name] = FeatureVector.from_string(name, text)
            video = videos.get(row["V_ID"], {})
            self.add(
                FrameRecord(
                    frame_id=int(row["I_ID"]),
                    video_id=int(row["V_ID"]),
                    video_name=video.get("V_NAME", f"video_{row['V_ID']}"),
                    frame_name=row["I_NAME"],
                    category=video.get("CATEGORY"),
                    bucket=Bucket(int(row["MIN"]), int(row["MAX"])),
                    features=features,
                )
            )
