"""In-memory feature store mirroring the KEY_FRAMES table.

Search must compare the query against every candidate's feature vectors;
re-parsing feature strings out of the DB on every query would dominate
latency, so the system keeps this write-through cache: ingest updates it
and the DB together, and on open it is rebuilt from the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.catalog import FEATURE_COLUMNS
from repro.db.engine import Database
from repro.imaging import accel
from repro.features.base import FeatureExtractor, FeatureVector
from repro.indexing.rangefinder import Bucket

__all__ = ["FrameRecord", "FeatureStore"]


@dataclass(frozen=True)
class FrameRecord:
    """One key frame's metadata + parsed feature vectors."""

    frame_id: int
    video_id: int
    video_name: str
    frame_name: str
    category: Optional[str]
    bucket: Bucket
    # usually a plain dict; snapshot-backed records use a lazy Mapping that
    # materializes FeatureVectors from mmap rows on first access
    features: Mapping[str, FeatureVector] = field(default_factory=dict)


class FeatureStore:
    """frame_id -> FrameRecord, with per-video grouping.

    Two monotonic counters expose mutation state to the layers above:
    :attr:`generation` moves on *any* visible change (query caches key on
    it), :attr:`structure_generation` only when the frame population
    changes (the ANN index and the internal matrix/id caches sync on it).
    Bumping a counter is O(1), so bulk ingest pays one lazy cache rebuild
    at the next query instead of one invalidation per insert.
    """

    def __init__(self):
        self._frames: Dict[int, FrameRecord] = {}
        self._by_video: Dict[int, List[int]] = {}
        # clip-level motion descriptors (extension; see repro.video.motion)
        self._video_motion: Dict[int, FeatureVector] = {}
        # feature name -> (stacked matrix over all frames, frame_id -> row);
        # built lazily by feature_matrix, revalidated by generation
        self._matrix_cache: Dict[str, Tuple[np.ndarray, Dict[int, int]]] = {}
        # feature name -> extractor-prepared full stack; the single source
        # of truth every SearchEngine sharing this store draws from, so
        # snapshot generation, cache generation, and ANN retrain key off
        # the same structure_generation (they can't skew)
        self._prepared_cache: Dict[str, np.ndarray] = {}
        self._generation = 0
        self._structure_generation = 0
        # structure generation the matrix/id caches were built at
        self._cache_generation = -1
        self._ids_cache: Tuple[int, ...] = ()
        self._ids_arr: np.ndarray = np.empty(0, dtype=np.int64)

    @property
    def generation(self) -> int:
        """Bumped on every mutation (adds, removals, renames, motion)."""
        return self._generation

    @property
    def structure_generation(self) -> int:
        """Bumped only when frames are added or removed."""
        return self._structure_generation

    def _mutated(self, structural: bool = False) -> None:
        self._generation += 1
        if structural:
            self._structure_generation += 1

    def _sync_caches(self) -> None:
        if self._cache_generation != self._structure_generation:
            self._matrix_cache.clear()
            self._prepared_cache.clear()
            self._ids_cache = tuple(sorted(self._frames))
            self._ids_arr = np.asarray(self._ids_cache, dtype=np.int64)
            self._cache_generation = self._structure_generation

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, frame_id: int) -> bool:
        return frame_id in self._frames

    def get(self, frame_id: int) -> FrameRecord:
        return self._frames[frame_id]

    def frame_ids(self) -> List[int]:
        self._sync_caches()
        return list(self._ids_cache)

    def video_ids(self) -> List[int]:
        return sorted(self._by_video)

    def frames_of_video(self, video_id: int) -> List[FrameRecord]:
        """The video's key frames in frame-id (i.e. temporal) order."""
        return [self._frames[i] for i in sorted(self._by_video.get(video_id, []))]

    # -- mutation -------------------------------------------------------------

    def add(self, record: FrameRecord) -> None:
        if record.frame_id in self._frames:
            raise KeyError(f"frame id {record.frame_id} already in store")
        self._frames[record.frame_id] = record
        self._by_video.setdefault(record.video_id, []).append(record.frame_id)
        self._mutated(structural=True)

    def remove_video(self, video_id: int) -> List[int]:
        """Drop every frame of a video; returns the removed frame ids."""
        frame_ids = self._by_video.pop(video_id, [])
        for fid in frame_ids:
            del self._frames[fid]
        self._video_motion.pop(video_id, None)
        if frame_ids:
            self._mutated(structural=True)
        return frame_ids

    def rename_video(self, video_id: int, new_name: str) -> int:
        """Rewrite ``video_name`` on the video's records (metadata only).

        Feature vectors and buckets are untouched, so the stacked-matrix
        cache stays valid.  Returns the number of affected frames.
        """
        frame_ids = self._by_video.get(video_id, [])
        for fid in frame_ids:
            self._frames[fid] = replace(self._frames[fid], video_name=new_name)
        if frame_ids:
            self._mutated()
        return len(frame_ids)

    def clear(self) -> None:
        self._frames.clear()
        self._by_video.clear()
        self._video_motion.clear()
        self._matrix_cache.clear()
        self._prepared_cache.clear()
        self._mutated(structural=True)

    # -- stacked feature matrices ------------------------------------------------

    def feature_matrix(
        self, name: str, frame_ids: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """The frames' ``name`` vectors stacked into an ``(n, d)`` matrix.

        Row ``i`` is ``frame_ids[i]``'s vector (all frames in id order when
        ``frame_ids`` is None).  The full stack is cached per feature and
        lazily rebuilt when :attr:`structure_generation` has moved since it
        was built; subsets are cheap row gathers from that cache.  Raises
        ``KeyError`` for an unknown frame id or a frame missing the
        feature, exactly as the scalar per-record path would.
        """
        self._sync_caches()
        cached = self._matrix_cache.get(name)
        if cached is None:
            ids = self.frame_ids()
            rows = [self._frames[fid].features[name].values for fid in ids]
            if rows:
                base = np.stack(rows).astype(np.float64, copy=False)
            else:
                base = np.empty((0, 0), dtype=np.float64)
            base.setflags(write=False)
            cached = (base, {fid: i for i, fid in enumerate(ids)})
            self._matrix_cache[name] = cached
        base, row_of = cached
        if frame_ids is None:
            return base
        if accel.fast_paths_enabled():
            wanted = np.asarray(frame_ids, dtype=np.int64)
            if wanted.size == self._ids_arr.size and bool(
                np.array_equal(wanted, self._ids_arr)
            ):
                return base
            try:
                return base[self.matrix_rows(wanted)]
            except KeyError:
                pass  # unknown id: the dict path below raises it by value
        return base[[row_of[fid] for fid in frame_ids]]

    def prepared_matrix(self, name: str, extractor: FeatureExtractor) -> np.ndarray:
        """The feature's extractor-prepared full stack, cached per structure.

        This is the one ``structure_generation``-keyed prepared-matrix
        cache in the system: search engines delegate here instead of
        keeping tuple-keyed copies, so every consumer of the stack
        invalidates on exactly the same counter as :meth:`feature_matrix`
        and the ANN retrain.  Row ``i`` describes frame ``frame_ids()[i]``
        (preparation commutes with row gathers, see
        ``FeatureExtractor.prepare_matrix``).
        """
        self._sync_caches()
        prepared = self._prepared_cache.get(name)
        if prepared is None:
            prepared = extractor.prepare_matrix(self.feature_matrix(name))
            prepared.setflags(write=False)
            self._prepared_cache[name] = prepared
        return prepared

    def matrix_rows(self, frame_ids: Sequence[int]) -> np.ndarray:
        """Row positions of ``frame_ids`` in the id-ordered stacked matrices.

        The stacks of :meth:`feature_matrix` hold frames in ascending-id
        order, so the id -> row mapping is a binary search.  Raises
        ``KeyError`` for an id not in the store.
        """
        self._sync_caches()
        wanted = np.asarray(frame_ids, dtype=np.int64)
        if wanted.size == 0:
            return np.empty(0, dtype=np.int64)
        id_arr = self._ids_arr
        if id_arr.size:
            pos = np.searchsorted(id_arr, wanted)
            pos = np.minimum(pos, id_arr.size - 1)
            ok = id_arr[pos] == wanted
            if bool(np.all(ok)):
                return pos
            bad = wanted[~ok][0]
        else:
            bad = wanted[0]
        raise KeyError(int(bad))

    # -- clip-level motion ------------------------------------------------------

    def set_video_motion(self, video_id: int, descriptor: FeatureVector) -> None:
        self._video_motion[video_id] = descriptor

    def video_motion(self, video_id: int) -> Optional[FeatureVector]:
        return self._video_motion.get(video_id)

    # -- snapshot loading --------------------------------------------------------

    def load_snapshot_state(
        self,
        records: Iterable[FrameRecord],
        video_motion: Mapping[int, FeatureVector],
        generation: int,
        structure_generation: int,
    ) -> None:
        """Adopt a snapshot's frame population and its recorded counters.

        Unlike :meth:`rebuild_from_db` + :meth:`add` loops, this restores
        :attr:`generation` / :attr:`structure_generation` to the values
        the snapshot was written at, so query-cache keys and ANN sync
        state computed before the process restarted stay byte-correct
        relative to the WAL entries replayed on top.
        """
        self._frames = {r.frame_id: r for r in records}
        self._by_video = {}
        for fid in sorted(self._frames):
            record = self._frames[fid]
            self._by_video.setdefault(record.video_id, []).append(fid)
        self._video_motion = dict(video_motion)
        self._matrix_cache.clear()
        self._prepared_cache.clear()
        self._generation = generation
        self._structure_generation = structure_generation
        self._ids_cache = tuple(sorted(self._frames))
        self._ids_arr = np.asarray(self._ids_cache, dtype=np.int64)
        self._cache_generation = structure_generation

    def seed_matrix(self, name: str, matrix: np.ndarray) -> None:
        """Install a prebuilt id-ordered full stack (e.g. an mmap view).

        ``matrix`` row ``i`` must hold ``frame_ids()[i]``'s vector -- the
        exact layout :meth:`feature_matrix` would build.  Seeding an mmap
        view means queries serve straight off the page cache; the seed
        is discarded like any cache entry once the structure mutates.
        """
        self._sync_caches()
        if matrix.shape[0] != len(self._ids_cache):
            raise ValueError(
                f"seed matrix for {name!r} has {matrix.shape[0]} rows, "
                f"store has {len(self._ids_cache)} frames"
            )
        if matrix.flags.writeable:  # np.memmap mode="r" views already aren't
            matrix.setflags(write=False)
        row_of = {fid: i for i, fid in enumerate(self._ids_cache)}
        self._matrix_cache[name] = (matrix, row_of)

    # -- rebuild -----------------------------------------------------------------

    def rebuild_from_db(self, db: Database, feature_names: Sequence[str]) -> None:
        """Repopulate from VIDEO_STORE + KEY_FRAMES (used by ``open``)."""
        self.clear()
        videos = {
            row["V_ID"]: row
            for row in db.execute(
                "SELECT V_ID, V_NAME, CATEGORY, MOTION FROM VIDEO_STORE"
            ).rows
        }
        for v_id, row in videos.items():
            if row.get("MOTION"):
                self._video_motion[int(v_id)] = FeatureVector.from_string(
                    "motion", row["MOTION"]
                )
        wanted = [(name, FEATURE_COLUMNS[name]) for name in feature_names]
        for row in db.execute("SELECT * FROM KEY_FRAMES").rows:
            features: Dict[str, FeatureVector] = {}
            for name, column in wanted:
                text = row.get(column)
                if text:
                    features[name] = FeatureVector.from_string(name, text)
            video = videos.get(row["V_ID"], {})
            self.add(
                FrameRecord(
                    frame_id=int(row["I_ID"]),
                    video_id=int(row["V_ID"]),
                    video_name=video.get("V_NAME", f"video_{row['V_ID']}"),
                    frame_name=row["I_NAME"],
                    category=video.get("CATEGORY"),
                    bucket=Bucket(int(row["MIN"]), int(row["MAX"])),
                    features=features,
                )
            )
