"""The admin ingest pipeline (the left half of the Fig. 3 DFD).

``add_video`` runs the full chain the paper describes:

1. serialize the frames into an RVF blob (``VIDEO_STORE.VIDEO``);
2. extract key frames with the §4.1 threshold algorithm;
3. for each key frame: run every configured feature extractor, compute the
   §4.2 ``(min, max)`` index bucket, encode the frame as a PPM blob;
4. insert the ``KEY_FRAMES`` rows, update the range index and the
   in-memory feature store -- all inside one transaction so a failing
   extractor leaves nothing half-ingested.

Step 3 is the CPU hot path -- seven extractors over every key frame -- and
is pure per-frame computation, so when ``config.workers > 1`` it fans out
over a :class:`repro.runtime.WorkerPool`; the DB writes of step 4 stay in
one transaction on the calling thread either way, and the pool's ordered
map keeps results byte-identical to a serial run.
"""

from __future__ import annotations

import datetime
import time
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.catalog import FEATURE_COLUMNS
from repro.core.config import SystemConfig
from repro.core.store import FeatureStore, FrameRecord
from repro.db.engine import Database
from repro.db.errors import DatabaseError
from repro.db.sql import build_insert
from repro.features.base import FeatureExtractor, FeatureVector, get_extractor
from repro.imaging.image import Image
from repro.indexing.rangefinder import Bucket, RangeFinder
from repro.indexing.tree import RangeIndex
from repro.obs import NULL_OBS, Obs, log
from repro.resilience import NULL_POLICIES, ResiliencePolicies
from repro.runtime import WorkerPool, resolve_workers
from repro.video.codec import encode_rvf_bytes
from repro.video.generator import SyntheticVideo
from repro.video.keyframes import KeyFrameExtractor

__all__ = ["Ingestor", "IngestReport"]

#: per-key-frame computation result: features, index bucket, MAJORREGIONS,
#: PPM blob, and per-extractor wall seconds (timed where the work ran, so
#: parallel ingest still reports extraction latencies to the parent)
FramePayload = Tuple[Dict[str, FeatureVector], Bucket, int, bytes, Dict[str, float]]


def _compute_frame_payload(
    frame: Image,
    extractors: Dict[str, FeatureExtractor],
    finder: RangeFinder,
    fallback_regions: FeatureExtractor,
) -> FramePayload:
    """Everything ``_ingest_frame`` needs that does not touch the DB.

    Module-level and side-effect free so a :class:`WorkerPool` can ship it
    to worker processes.
    """
    features: Dict[str, FeatureVector] = {}
    timings: Dict[str, float] = {}
    for name, extractor in extractors.items():
        t0 = time.perf_counter()
        features[name] = extractor.extract(frame)
        timings[name] = time.perf_counter() - t0
    bucket = finder.bucket_for_image(frame)
    if "regions" in features:
        major_regions = int(features["regions"].values[2])
    else:
        major_regions = int(fallback_regions.extract(frame).values[2])
    return features, bucket, major_regions, frame.encode("ppm"), timings


class _StageTimer:
    """Context manager pairing a span with a per-stage histogram sample."""

    __slots__ = ("_span", "_hist", "_label", "_t0")

    def __init__(self, span: object, hist: object, label: str):
        self._span = span
        self._hist = hist
        self._label = label
        self._t0 = 0.0

    def __enter__(self) -> "_StageTimer":
        self._t0 = time.perf_counter()
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._hist.labels(stage=self._label).observe(
            time.perf_counter() - self._t0
        )
        return bool(self._span.__exit__(*exc_info))


@dataclass(frozen=True)
class IngestReport:
    """What one ``add_video`` call produced."""

    video_id: int
    video_name: str
    n_frames: int
    keyframe_ids: List[int]

    @property
    def n_keyframes(self) -> int:
        return len(self.keyframe_ids)


class Ingestor:
    """Admin-side pipeline bound to one database + store + index."""

    def __init__(
        self,
        db: Database,
        config: SystemConfig,
        store: FeatureStore,
        index: RangeIndex,
        pool: Optional[WorkerPool] = None,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ):
        self.db = db
        self.config = config
        self.store = store
        self.index = index
        self.extractors: Dict[str, FeatureExtractor] = {
            name: get_extractor(name) for name in config.features
        }
        self.keyframe_extractor = KeyFrameExtractor(
            threshold=config.keyframe_threshold,
            base_size=config.keyframe_base_size,
        )
        # regions is needed for the MAJORREGIONS column even if not an
        # active search feature
        self._regions = self.extractors.get("regions") or get_extractor("regions")
        self._pool = pool or WorkerPool(workers=resolve_workers(config.workers))
        self._obs = obs
        self._policies = policies
        # optional SnapshotManager (attach_snapshots); mutations are logged
        # to its WAL after the DB commit + store mirror
        self._snapshots = None
        self._log = log.get_logger(__name__)
        self._m_videos = obs.counter(
            "repro_ingest_videos_total", "Videos ingested."
        )
        self._m_frames = obs.counter(
            "repro_ingest_frames_total", "Raw frames ingested."
        )
        self._m_keyframes = obs.counter(
            "repro_ingest_keyframes_total", "Key frames extracted and stored."
        )
        self._m_deletes = obs.counter(
            "repro_ingest_deletes_total", "Videos deleted."
        )
        self._m_renames = obs.counter(
            "repro_ingest_renames_total", "Videos renamed."
        )
        self._m_video_seconds = obs.histogram(
            "repro_ingest_video_seconds", "End-to-end add_video wall time."
        )
        self._m_stage_seconds = obs.histogram(
            "repro_ingest_stage_seconds",
            "Per-stage add_video wall time.",
            labelnames=("stage",),
        )
        self._m_extract_seconds = obs.histogram(
            "repro_ingest_extract_seconds",
            "Per-extractor wall time per key frame (measured in the worker).",
            labelnames=("feature",),
        )

    def close(self) -> None:
        """Tear down the worker pool (no-op for serial configurations)."""
        self._pool.close()

    def attach_snapshots(self, snapshots) -> None:
        """Log committed mutations to ``snapshots``' WAL (see core.snapshots)."""
        self._snapshots = snapshots

    @staticmethod
    def _motion_descriptor(frames: Sequence[Image]) -> FeatureVector:
        """Clip-level motion activity (zeros for single-frame clips)."""
        import numpy as np

        from repro.video.motion import MOTION_DIMS, motion_activity

        if len(frames) < 2:
            values = np.zeros(MOTION_DIMS)
        else:
            values = motion_activity(frames)
        return FeatureVector(kind="motion", values=values, tag="MOTION")

    # -- id allocation ----------------------------------------------------------

    #: literal MAX() statements per id column (R4: no interpolated SQL)
    _MAX_ID_SQL = {
        ("VIDEO_STORE", "V_ID"): "SELECT MAX(V_ID) FROM VIDEO_STORE",
        ("KEY_FRAMES", "I_ID"): "SELECT MAX(I_ID) FROM KEY_FRAMES",
    }

    def _next_id(self, table: str, column: str) -> int:
        """1 + the column's max, via an aggregate instead of fetching rows."""
        result = self.db.execute(self._MAX_ID_SQL[(table, column)]).scalar()
        return 1 + (int(result) if result is not None else 0)

    # -- operations -----------------------------------------------------------------

    def add_video(
        self,
        video: Union[SyntheticVideo, Sequence[Image]],
        name: Optional[str] = None,
        category: Optional[str] = None,
        stored_on: Optional[datetime.date] = None,
    ) -> IngestReport:
        """Ingest a video (SyntheticVideo or a plain frame sequence)."""
        if isinstance(video, SyntheticVideo):
            frames = list(video.frames)
            name = name or video.name
            category = category or video.category
        else:
            frames = list(video)
            if name is None:
                raise ValueError("a name is required when ingesting raw frames")
        if not frames:
            raise ValueError("cannot ingest an empty video")

        t_video = time.perf_counter()
        with self._policies.request_scope(), self._obs.span(
            "ingest.add_video", name=name, frames=len(frames)
        ) as root:
            video_id = self._next_id("VIDEO_STORE", "V_ID")
            next_frame_id = self._next_id("KEY_FRAMES", "I_ID")
            self._policies.check_stage("ingest.encode")
            with self._stage("encode"):
                video_blob = encode_rvf_bytes(frames)
            self._policies.check_stage("ingest.keyframes")
            with self._stage("keyframes"):
                key_frames = self.keyframe_extractor.extract(frames)
            stored_on = stored_on or datetime.date(2012, 10, 1)
            motion = self._motion_descriptor(frames)

            # fan the pure per-frame computation out across workers; the order
            # of payloads matches key_frames, so ids and rows are deterministic
            compute = partial(
                _compute_frame_payload,
                extractors=self.extractors,
                finder=self.index.finder,
                fallback_regions=self._regions,
            )
            self._policies.check_stage("ingest.features")
            with self._stage("features"):
                payloads = self._pool.map(
                    compute, [frame for _index, frame in key_frames]
                )
            for payload in payloads:
                for feature, seconds in payload[4].items():
                    self._m_extract_seconds.labels(feature=feature).observe(seconds)

            new_records: List[FrameRecord] = []
            self._policies.check_stage("ingest.db_txn")
            with self._stage("db_txn"):
                with self.db.transaction():
                    self.db.execute(
                        "INSERT INTO VIDEO_STORE (V_ID, V_NAME, CATEGORY, VIDEO, MOTION, DOSTORE)"
                        " VALUES (?, ?, ?, ?, ?, ?)",
                        (video_id, name, category, video_blob, motion.to_string(), stored_on),
                    )
                    for offset, ((frame_index, _frame), payload) in enumerate(zip(key_frames, payloads)):
                        frame_id = next_frame_id + offset
                        record = self._ingest_frame(
                            frame_id, video_id, name, category, frame_index, payload
                        )
                        new_records.append(record)

            # DB committed; now mirror into store + index
            with self._stage("mirror"):
                for record in new_records:
                    self.store.add(record)
                    self.index.insert_bucket(record.frame_id, record.bucket)
                self.store.set_video_motion(video_id, motion)
            if self._snapshots is not None:
                self._snapshots.record_add_video(
                    video_id, name, category, motion, new_records
                )

            root.annotate(video_id=video_id, keyframes=len(new_records))
            elapsed = time.perf_counter() - t_video
            self._m_videos.inc()
            self._m_frames.inc(len(frames))
            self._m_keyframes.inc(len(new_records))
            self._m_video_seconds.observe(elapsed)
            self._log.info(
                "ingest.video",
                video_id=video_id,
                name=name,
                frames=len(frames),
                keyframes=len(new_records),
                ms=round(elapsed * 1000.0, 2),
            )
        return IngestReport(
            video_id=video_id,
            video_name=name,
            n_frames=len(frames),
            keyframe_ids=[r.frame_id for r in new_records],
        )

    def _stage(self, label: str) -> "_StageTimer":
        """A span + stage-histogram context manager for one pipeline stage."""
        return _StageTimer(
            self._obs.span(f"ingest.{label}"), self._m_stage_seconds, label
        )

    def _ingest_frame(
        self,
        frame_id: int,
        video_id: int,
        video_name: str,
        category: Optional[str],
        frame_index: int,
        payload: FramePayload,
    ) -> FrameRecord:
        """Write one precomputed key frame's row (DB work only)."""
        features, bucket, major_regions, ppm_blob, _timings = payload
        frame_name = f"{video_name}_f{frame_index:04d}"

        columns = ["I_ID", "I_NAME", "IMAGE", "MIN", "MAX", "MAJORREGIONS", "V_ID"]
        values: List[object] = [
            frame_id,
            frame_name,
            ppm_blob,
            bucket.min,
            bucket.max,
            major_regions,
            video_id,
        ]
        for name, vector in features.items():
            columns.append(FEATURE_COLUMNS[name])
            values.append(vector.to_string())
        self.db.execute(build_insert("KEY_FRAMES", columns), tuple(values))
        return FrameRecord(
            frame_id=frame_id,
            video_id=video_id,
            video_name=video_name,
            frame_name=frame_name,
            category=category,
            bucket=bucket,
            features=features,
        )

    def delete_video(self, video_id: int) -> int:
        """Remove a video and its key frames; returns removed frame count."""
        rows = self.db.execute(
            "SELECT V_ID FROM VIDEO_STORE WHERE V_ID = ?", (video_id,)
        ).rows
        if not rows:
            raise DatabaseError(f"no video with id {video_id}")
        with self.db.transaction():
            self.db.execute("DELETE FROM KEY_FRAMES WHERE V_ID = ?", (video_id,))
            self.db.execute("DELETE FROM VIDEO_STORE WHERE V_ID = ?", (video_id,))
        frame_ids = self.store.remove_video(video_id)
        for fid in frame_ids:
            if fid in self.index:
                self.index.remove(fid)
        if self._snapshots is not None:
            self._snapshots.record_delete(video_id)
        self._m_deletes.inc()
        self._log.info(
            "ingest.delete", video_id=video_id, frames=len(frame_ids)
        )
        return len(frame_ids)

    def rename_video(self, video_id: int, new_name: str) -> None:
        """Update V_NAME (metadata-only update; features are untouched)."""
        count = self.db.execute(
            "UPDATE VIDEO_STORE SET V_NAME = ? WHERE V_ID = ?", (new_name, video_id)
        ).rowcount
        if count == 0:
            raise DatabaseError(f"no video with id {video_id}")
        self.store.rename_video(video_id, new_name)
        if self._snapshots is not None:
            self._snapshots.record_rename(video_id, new_name)
        self._m_renames.inc()
        self._log.info("ingest.rename", video_id=video_id, name=new_name)
