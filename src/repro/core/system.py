"""The :class:`VideoRetrievalSystem` facade.

Mirrors the paper's two-role design (Fig. 2 use cases, Fig. 4 block
diagram): an **administrator** manages the stored videos; a **user** only
searches.  Construction bootstraps the DB schema, and opening an existing
database rebuilds the in-memory feature store and range index from the
``KEY_FRAMES`` table.

    system = VideoRetrievalSystem.in_memory()
    admin = system.login_admin()
    admin.add_video(my_video)
    results = system.search(query_frame, top_k=20)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.catalog import bootstrap
from repro.core.config import SystemConfig
from repro.core.ingest import Ingestor, IngestReport
from repro.core.results import SearchResults
from repro.core.search import SearchEngine, VideoMatch
from repro.core.snapshots import SnapshotManager, init_worker_snapshot
from repro.core.store import FeatureStore
from repro.db.engine import Database
from repro.db.types import ORD_VIDEO
from repro.imaging.image import Image, decode_image
from repro.indexing.rangefinder import RangeFinder
from repro.indexing.tree import RangeIndex
from repro.obs import Obs, log as obs_log
from repro.resilience import NULL_POLICIES, ResiliencePolicies
from repro.runtime import WorkerPool, resolve_workers
from repro.video.generator import SyntheticVideo

__all__ = ["VideoRetrievalSystem", "AdminSession", "AuthenticationError"]


class AuthenticationError(Exception):
    """Wrong admin password."""


class AdminSession:
    """The administrator's view: full content management."""

    def __init__(self, system: "VideoRetrievalSystem"):
        self._system = system

    def add_video(self, video, name: Optional[str] = None, category: Optional[str] = None, **kwargs) -> IngestReport:
        return self._system._ingestor.add_video(video, name=name, category=category, **kwargs)

    def delete_video(self, video_id: int) -> int:
        return self._system._ingestor.delete_video(video_id)

    def rename_video(self, video_id: int, new_name: str) -> None:
        self._system._ingestor.rename_video(video_id, new_name)

    def checkpoint(self) -> None:
        """Fold the WALs into snapshots: the database's and the store's."""
        self._system.db.checkpoint()
        if self._system.snapshots.active:
            self._system.snapshots.write()


class VideoRetrievalSystem:
    """End-to-end content-based video retrieval."""

    def __init__(self, db: Optional[Database] = None, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        #: per-system observability facade; disabled it costs one no-op
        #: call per instrumentation point (see docs/observability.md)
        self.obs = Obs(
            enabled=self.config.obs_enabled,
            trace_buffer=self.config.obs_trace_buffer,
            latency_buckets=self.config.obs_latency_buckets,
            slow_query_ms=self.config.obs_slow_query_ms,
            slow_log_size=self.config.obs_slow_log_size,
        )
        if self.config.obs_log_level is not None:
            obs_log.set_level(self.config.obs_log_level)
        #: per-system resilience policies (retry/breakers/deadline/faults);
        #: disabled every hook is one early-out (see docs/resilience.md)
        self.resilience = (
            ResiliencePolicies.from_config(self.config, obs=self.obs)
            if self.config.resilience
            else NULL_POLICIES
        )
        self.db = db or Database()
        self.db.attach_obs(self.obs)
        self.db.attach_resilience(self.resilience)
        bootstrap(self.db)
        self._store = FeatureStore()
        finder = RangeFinder(
            first_threshold=self.config.index_first_threshold,
            threshold=self.config.index_threshold,
            max_level=self.config.index_max_level,
        )
        self._index = RangeIndex(finder)
        # one worker pool shared by ingest and search (lazy: serial configs
        # never spawn processes)
        self._pool = WorkerPool(workers=resolve_workers(self.config.workers))
        self._pool.attach_obs(self.obs)
        self._pool.attach_resilience(self.resilience)
        self._ingestor = Ingestor(
            self.db, self.config, self._store, self._index, pool=self._pool,
            obs=self.obs, policies=self.resilience,
        )
        self._engine = SearchEngine(
            self.config, self._store, self._index, pool=self._pool, obs=self.obs,
            policies=self.resilience,
        )
        #: mmap snapshot serving: open the on-disk index image when one is
        #: valid, rebuild from SQL otherwise (see docs/snapshot.md)
        self.snapshots = SnapshotManager(
            self.config, self.db, self._store, obs=self.obs,
            policies=self.resilience,
        )
        self.snapshots.attach_engine(self._engine)
        self._ingestor.attach_snapshots(self.snapshots)
        if self.snapshots.try_open():
            # the store came off the mmap; only the range index needs
            # rebuilding (cheap: two ints per frame, no feature parsing)
            for fid in self._store.frame_ids():
                self._index.insert_bucket(fid, self._store.get(fid).bucket)
            self._pool.set_initializer(
                init_worker_snapshot, (self.snapshots.path,)
            )
        else:
            self._reload_from_db()

    # -- constructors ----------------------------------------------------------

    @classmethod
    def in_memory(cls, config: Optional[SystemConfig] = None) -> "VideoRetrievalSystem":
        """A volatile system (no files touched)."""
        return cls(Database(), config)

    @classmethod
    def open(cls, path, config: Optional[SystemConfig] = None) -> "VideoRetrievalSystem":
        """A durable system at ``path`` (snapshot + WAL)."""
        return cls(Database.open(path), config)

    def _reload_from_db(self) -> None:
        self._store.rebuild_from_db(self.db, list(self.config.features))
        for fid in self._store.frame_ids():
            self._index.insert_bucket(fid, self._store.get(fid).bucket)

    # -- engine attachment -----------------------------------------------------

    @property
    def engine(self):
        """The query engine currently serving :meth:`search` (read access)."""
        return self._engine

    @property
    def feature_store(self) -> FeatureStore:
        """The live in-memory feature store (read access for tooling).

        Mutations belong to :class:`AdminSession`; this accessor exists
        for read-side tooling -- the shard splitter, evaluation scripts --
        that needs the records without re-parsing the database.
        """
        return self._store

    def attach_engine(self, engine) -> None:
        """Swap the query engine serving :meth:`search` / :meth:`search_by_video`.

        The hook the sharded scatter-gather coordinator (and any future
        engine variant) binds through -- ``repro.core`` sits below those
        layers in the architecture DAG, so they push themselves in rather
        than being imported here.  The engine must expose the
        :class:`~repro.core.search.SearchEngine` query surface; it is
        closed with the system.  The previous engine stays usable (it
        shares this system's store and pool) but stops receiving queries.
        """
        self._engine = engine
        self.snapshots.attach_engine(engine)

    # -- roles ----------------------------------------------------------------------

    def login_admin(self, password: Optional[str] = None) -> AdminSession:
        """Authenticate as administrator (open access if no password set)."""
        if self.config.admin_password is not None and password != self.config.admin_password:
            raise AuthenticationError("wrong administrator password")
        return AdminSession(self)

    @property
    def admin(self) -> AdminSession:
        """Shortcut for systems without a password."""
        return self.login_admin()

    # -- user API ----------------------------------------------------------------------

    def search(
        self,
        image: Image,
        features: Optional[Sequence[str]] = None,
        top_k: int = 20,
        use_index: Optional[bool] = None,
    ) -> SearchResults:
        """Query by frame; see :meth:`SearchEngine.query_frame`."""
        return self._engine.query_frame(image, features=features, top_k=top_k, use_index=use_index)

    def search_by_video(
        self,
        video: Union[SyntheticVideo, Sequence[Image]],
        features: Optional[Sequence[str]] = None,
        top_k: int = 10,
    ) -> List[VideoMatch]:
        """Query by clip; see :meth:`SearchEngine.query_video`."""
        return self._engine.query_video(video, features=features, top_k=top_k)

    def search_by_name(self, pattern: str) -> List[dict]:
        """Metadata search over video names (SQL LIKE pattern)."""
        return self.db.execute(
            "SELECT V_ID, V_NAME, CATEGORY FROM VIDEO_STORE WHERE V_NAME LIKE ? ORDER BY V_ID",
            (pattern,),
        ).rows

    # -- content access -----------------------------------------------------------------------

    def list_videos(self) -> List[dict]:
        return self.db.execute(
            "SELECT V_ID, V_NAME, CATEGORY, DOSTORE FROM VIDEO_STORE ORDER BY V_ID"
        ).rows

    def n_videos(self) -> int:
        return len(self.list_videos())

    def n_key_frames(self) -> int:
        return len(self._store)

    def get_video_frames(self, video_id: int) -> List[Image]:
        """Decode the stored RVF blob back into frames (Fig. 10's player)."""
        rows = self.db.execute(
            "SELECT VIDEO FROM VIDEO_STORE WHERE V_ID = ?", (video_id,)
        ).rows
        if not rows or rows[0]["VIDEO"] is None:
            raise KeyError(f"no stored video with id {video_id}")
        blob = rows[0]["VIDEO"]
        frames = self.resilience.run("codec.decode", lambda: ORD_VIDEO.decode(blob))
        return list(frames)

    def get_key_frame(self, frame_id: int) -> Image:
        """Decode one stored key-frame image."""
        rows = self.db.execute(
            "SELECT IMAGE FROM KEY_FRAMES WHERE I_ID = ?", (frame_id,)
        ).rows
        if not rows or rows[0]["IMAGE"] is None:
            raise KeyError(f"no key frame with id {frame_id}")
        return decode_image(rows[0]["IMAGE"])

    def key_frames_of(self, video_id: int):
        """FrameRecords of one video, in temporal order."""
        return self._store.frames_of_video(video_id)

    def any_key_frame(self) -> Image:
        """An arbitrary stored key frame (handy for demos and tests)."""
        ids = self._store.frame_ids()
        if not ids:
            raise KeyError("the system holds no key frames yet")
        return self.get_key_frame(ids[0])

    # -- observability ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """One snapshot of every live counter the system keeps.

        The unified stats surface: per-subsystem summaries under
        ``store`` / ``index`` / ``ann`` / ``cache`` (``ann`` is None when
        ``config.ann`` is off), plus the full metrics registry under
        ``registry`` (same data ``GET /metrics`` renders as Prometheus
        text).  ``index_stats()`` / ``ann_stats()`` / ``cache_stats()``
        are thin shims over this.
        """
        index = self._index.stats()
        return {
            "store": {
                "videos": self.n_videos(),
                "key_frames": len(self._store),
                "generation": self._store.generation,
            },
            "index": {
                "entries": index.n_entries,
                "buckets": index.n_buckets,
                "mean_bucket_size": index.mean_bucket_size,
            },
            "ann": self._engine.ann_stats(),
            "cache": self._engine.cache_stats(),
            "snapshot": self.snapshots.stats(),
            "sharding": self._sharding_summary(),
            "resilience": self._resilience_summary(),
            "slow_log": self._slow_log_summary(),
            "registry": self.obs.registry.render_json(),
        }

    def _slow_log_summary(self) -> Optional[Dict[str, Any]]:
        """Slow-query ring-buffer stats (None when the log is disabled).

        Includes the buffered entries under ``recent`` so dump-mode
        ``repro stats --slow`` works from a saved :meth:`metrics` JSON.
        """
        stats = self.obs.slow_log.stats()
        if stats is None:
            return None
        stats["recent"] = self.obs.slow_log.recent()
        return stats

    def _sharding_summary(self) -> Optional[Dict[str, Any]]:
        """Shard topology of the attached engine (None when unsharded).

        Duck-typed on purpose: ``repro.core`` cannot import the sharding
        layer, so any engine exposing ``sharding_stats()`` reports here.
        """
        stats_fn = getattr(self._engine, "sharding_stats", None)
        return stats_fn() if callable(stats_fn) else None

    def _resilience_summary(self) -> Dict[str, Any]:
        """Flat resilience snapshot for :meth:`metrics` / ``repro stats``."""
        stats = self.resilience.stats()
        flat: Dict[str, Any] = {
            "enabled": stats["enabled"],
            "armed_points": len(stats["faults"]),
            "faults_fired": sum(s["fired"] for s in stats["faults"].values()),
        }
        for name, breaker in stats["breakers"].items():
            flat[f"{name}_breaker_state"] = breaker["state"]
            flat[f"{name}_breaker_trips"] = breaker["trips"]
        return flat

    def recent_traces(self, limit: Optional[int] = None) -> List[dict]:
        """The most recent root traces, newest first (empty when disabled)."""
        return self.obs.recent_traces(limit)

    def slow_queries(self, limit: Optional[int] = None) -> List[dict]:
        """Slow-query entries, newest first (empty when the log is off)."""
        return self.obs.slow_log.recent(limit)

    def index_stats(self):
        """Range-index occupancy (rich :class:`IndexStats` snapshot)."""
        return self._index.stats()

    def ann_stats(self):
        """Shim over :meth:`metrics`: IVF counters (None unless ``config.ann``)."""
        return self._engine.ann_stats()

    def cache_stats(self):
        """Shim over :meth:`metrics`: query-result cache counters."""
        return self._engine.cache_stats()

    def snapshot_stats(self):
        """Shim over :meth:`metrics`: snapshot serving state (None when off)."""
        return self.snapshots.stats()

    def write_snapshot(self) -> str:
        """Write the store's mmap snapshot now; returns its path."""
        return self.snapshots.write()

    def close(self) -> None:
        # the engine owns per-engine resources (a sharded coordinator's
        # worker pools and partition mmaps); the default engine shares
        # self._pool, whose close is idempotent
        self._engine.close()
        self._pool.close()
        self.snapshots.close()
        self.db.close()
