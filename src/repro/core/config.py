"""System configuration.

Collects every tunable the paper mentions (key-frame threshold 800, the
range-finder thresholds 55/60, the feature set, fusion weights) in one
immutable object so experiments and ablations can vary them cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["SystemConfig", "TABLE1_FEATURES"]

#: The six individual features evaluated in Table 1 (plus "combined").
TABLE1_FEATURES: Tuple[str, ...] = ("glcm", "gabor", "tamura", "sch", "acc", "regions")


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of the retrieval system.

    ``features`` are the extractors run at ingest; ``fusion_weights`` maps
    feature name -> weight for the combined ranking (missing features get
    equal weight 1.0).  ``keyframe_*`` configures §4.1, ``index_*`` §4.2.
    """

    features: Tuple[str, ...] = TABLE1_FEATURES
    fusion_weights: Mapping[str, float] = field(default_factory=dict)
    # §4.1 key-frame extraction
    keyframe_threshold: float = 800.0
    keyframe_base_size: int = 150  # 300 in the paper; 150 halves the cost
    # §4.2 range-finder index
    use_index: bool = True
    index_first_threshold: float = 55.0
    index_threshold: float = 60.0
    index_max_level: int = 3
    # IVF inverted-file candidate index (sublinear retrieval extension):
    # k-means coarse quantizer over the stored feature vectors; queries
    # only score the members of the ``ann_nprobe`` nearest of the
    # ``ann_cells`` cells, exactly re-ranked.  Composes with the range
    # index (candidates are intersected).
    ann: bool = False
    ann_cells: int = 16
    ann_nprobe: int = 3
    #: LRU query-result cache entries (0 disables caching); invalidated
    #: automatically on any store mutation
    query_cache_size: int = 256
    # mmap snapshot serving (repro.snapshot): "auto" opens a valid snapshot
    # and falls back to the SQL rebuild otherwise; "off" always rebuilds;
    # "require" refuses to start without a valid snapshot (read replicas)
    snapshot: str = "auto"
    #: snapshot file location (None = "<db path>.snap" for durable systems;
    #: in-memory systems skip snapshots unless a path is given)
    snapshot_path: Optional[str] = None
    #: WAL entries that trigger an automatic compaction (0 = only explicit
    #: ``checkpoint()`` / ``repro snapshot write`` compactions)
    snapshot_compact_every: int = 64
    # video-to-video similarity
    sequence_method: str = "dtw"  # 'dtw' or 'align'
    sequence_gap_penalty: float = 0.5
    #: weight of the clip-level motion descriptor in video queries
    #: (0 = appearance only, the paper's system; 1 = equal to appearance)
    video_motion_weight: float = 0.0
    # execution layer (repro.runtime)
    #: ingest worker processes: 1 = serial, 0 = auto (REPRO_WORKERS / CPU count)
    workers: int = 1
    #: score candidates with vectorized batch distances instead of per-record loops
    batch_distances: bool = True
    # observability (repro.obs): metrics registry + tracing + structured logs
    #: master gate; False swaps every instrumentation point for shared no-ops
    obs_enabled: bool = True
    #: ring-buffer capacity for recent request traces (``/traces/recent``)
    obs_trace_buffer: int = 64
    #: level for the ``repro`` logger tree (None = REPRO_LOG_LEVEL env / WARNING)
    obs_log_level: Optional[str] = None
    #: latency histogram bucket bounds in seconds, strictly increasing
    #: (None = the built-in defaults, 1ms..10s); tune so sub-millisecond
    #: cache hits and multi-second degraded queries both resolve
    obs_latency_buckets: Optional[Tuple[float, ...]] = None
    #: wall-time threshold (ms) above which a query is captured in the
    #: slow-query ring buffer (``GET /debug/slow``); 0 disables the log
    obs_slow_query_ms: float = 500.0
    #: slow-query ring-buffer capacity
    obs_slow_log_size: int = 64
    # resilience (repro.resilience): retry/backoff, breakers, deadlines, faults
    #: master gate; False swaps every policy hook for shared no-ops
    resilience: bool = True
    #: armed fault points, e.g. "extractor.gabor:every=1;db.execute:once"
    #: (None = the REPRO_FAULTS environment variable)
    fault_spec: Optional[str] = None
    #: max attempts for retried calls (db statements, video decode)
    retry_attempts: int = 3
    #: first backoff delay in seconds (doubles per attempt, seeded jitter)
    retry_base_delay: float = 0.01
    #: total elapsed-time budget across one call's retries (None = unbounded)
    retry_max_elapsed: Optional[float] = None
    #: seed of the deterministic backoff jitter
    retry_seed: int = 2012
    #: sliding outcome window of the ANN / worker-pool circuit breakers
    breaker_window: int = 16
    #: failure fraction over the window that trips a breaker open
    breaker_failure_threshold: float = 0.5
    #: seconds an open breaker waits before its half-open probe
    breaker_cooldown: float = 0.1
    #: per-request wall-time budget checked at stage boundaries
    #: (None = unbounded; the web layer maps overruns to HTTP 504)
    request_deadline: Optional[float] = None
    # sharded scatter-gather serving (repro.sharding): a coordinator
    # fans queries out to ``shards`` persistent snapshot-backed workers
    # and merges their raw distances into the single-store ranking
    #: shard count (1 = unsharded, the default single-store engine)
    shards: int = 1
    #: per-shard RSNAP1 snapshot paths (len == ``shards``); None leaves
    #: attachment to the caller (``repro.sharding.bootstrap``)
    shard_paths: Optional[Tuple[str, ...]] = None
    #: serve a partial ranking when a shard fails / its breaker is open
    #: (surfaced via ``SearchResults.degraded_shards``); False escalates
    shard_partial_ok: bool = True
    # asyncio serving front-end (repro.serving): a bounded queue feeds a
    # micro-batcher that coalesces concurrent search requests into one
    # batched scoring call (one scatter per shard when sharded)
    #: micro-batching window in milliseconds: the batcher waits this long
    #: after the first queued request for batchmates (0 = drain-only, no
    #: artificial wait)
    batch_window_ms: float = 2.0
    #: max requests coalesced into one batched scoring call
    batch_max: int = 8
    #: queued-request ceiling: requests arriving beyond it are shed with
    #: HTTP 429 + Retry-After instead of queueing without bound
    serving_queue_limit: int = 128
    #: queue depth at which admitted requests degrade (fewer features,
    #: lower ``ann_nprobe``) before any shedding starts; 0 disables the
    #: degrade rung of the ladder
    serving_degrade_depth: int = 64
    #: features a load-degraded request keeps (front of ``features``)
    serving_degrade_features: int = 2
    # admin authentication (None = open access)
    admin_password: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.features:
            raise ValueError("at least one feature is required")
        from repro.features.base import all_extractors

        known = set(all_extractors())
        unknown = set(self.features) - known
        if unknown:
            raise ValueError(f"unknown features {sorted(unknown)}; known: {sorted(known)}")
        if self.keyframe_threshold < 0:
            raise ValueError("keyframe_threshold must be >= 0")
        if self.sequence_method not in ("dtw", "align"):
            raise ValueError("sequence_method must be 'dtw' or 'align'")
        if self.video_motion_weight < 0:
            raise ValueError("video_motion_weight must be non-negative")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = auto)")
        if self.ann_cells < 1:
            raise ValueError("ann_cells must be >= 1")
        if self.ann_nprobe < 1:
            raise ValueError("ann_nprobe must be >= 1")
        if self.ann_nprobe > self.ann_cells:
            raise ValueError("ann_nprobe must not exceed ann_cells")
        if self.query_cache_size < 0:
            raise ValueError("query_cache_size must be >= 0")
        if self.snapshot not in ("auto", "off", "require"):
            raise ValueError("snapshot must be 'auto', 'off', or 'require'")
        if self.snapshot_compact_every < 0:
            raise ValueError("snapshot_compact_every must be >= 0 (0 = manual only)")
        if self.obs_trace_buffer < 1:
            raise ValueError("obs_trace_buffer must be >= 1")
        if self.obs_latency_buckets is not None:
            bounds = self.obs_latency_buckets
            if not bounds:
                raise ValueError("obs_latency_buckets needs at least one bound")
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise ValueError(
                    f"obs_latency_buckets must strictly increase: {bounds}"
                )
        if self.obs_slow_query_ms < 0:
            raise ValueError("obs_slow_query_ms must be >= 0 (0 = disabled)")
        if self.obs_slow_log_size < 1:
            raise ValueError("obs_slow_log_size must be >= 1")
        if self.obs_log_level is not None:
            allowed = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")
            if str(self.obs_log_level).upper() not in allowed:
                raise ValueError(
                    f"obs_log_level must be one of {allowed}, got {self.obs_log_level!r}"
                )
        if self.retry_attempts < 1:
            raise ValueError("retry_attempts must be >= 1")
        if self.retry_base_delay < 0:
            raise ValueError("retry_base_delay must be non-negative")
        if self.retry_max_elapsed is not None and self.retry_max_elapsed <= 0:
            raise ValueError("retry_max_elapsed must be positive")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be >= 1")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError("breaker_failure_threshold must lie in (0, 1]")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_paths is not None and len(self.shard_paths) != self.shards:
            raise ValueError(
                f"shard_paths holds {len(self.shard_paths)} paths "
                f"but shards={self.shards}"
            )
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0 (0 = drain-only)")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.serving_queue_limit < 1:
            raise ValueError("serving_queue_limit must be >= 1")
        if self.serving_degrade_depth < 0:
            raise ValueError("serving_degrade_depth must be >= 0 (0 = disabled)")
        if self.serving_degrade_depth > self.serving_queue_limit:
            raise ValueError(
                "serving_degrade_depth must not exceed serving_queue_limit "
                "(degrade must kick in before shedding)"
            )
        if self.serving_degrade_features < 1:
            raise ValueError("serving_degrade_features must be >= 1")
        if self.shards > 1 and self.ann:
            raise ValueError(
                "ann is not supported with sharded serving (shards > 1): "
                "the coordinator merges exact raw distances"
            )
        if self.fault_spec is not None:
            from repro.resilience.faults import parse_fault_spec

            parse_fault_spec(self.fault_spec)  # fail fast on malformed specs

    def weight_of(self, feature: str) -> float:
        return float(self.fusion_weights.get(feature, 1.0))

    def weights_dict(self) -> Dict[str, float]:
        return {f: self.weight_of(f) for f in self.features}

    def with_(self, **changes) -> "SystemConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)
