"""The retrieval system proper: ingest pipeline, search engine, facade.

This package wires the substrates together exactly as the paper's block
diagram (Fig. 4) describes: an **Administrator** role that adds, updates
and deletes videos (each addition runs key-frame extraction, feature
extraction, range-finder indexing and DB storage), and a **User** role
that submits a query frame and receives ranked similar videos.
"""

from repro.core.config import SystemConfig
from repro.core.feedback import FeedbackSession
from repro.core.results import RetrievalResult, SearchResults
from repro.core.system import AdminSession, AuthenticationError, VideoRetrievalSystem

__all__ = [
    "SystemConfig",
    "VideoRetrievalSystem",
    "AdminSession",
    "AuthenticationError",
    "RetrievalResult",
    "SearchResults",
    "FeedbackSession",
]
