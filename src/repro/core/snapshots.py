"""Store-level snapshot management: mmap cold start + WAL + compaction.

:mod:`repro.snapshot` owns the bytes; this module translates them to and
from live objects.  :class:`SnapshotManager` sits beside the
:class:`~repro.core.store.FeatureStore` and

- **opens**: maps the snapshot read-only, restores the store's frame
  population and generation counters, replays the WAL on top, seeds the
  stacked-matrix cache with the mmap views (queries then serve straight
  off the page cache), and hands the IVF coarse quantizer its trained
  state -- all without touching a single ``KEY_FRAMES`` row;
- **records**: appends each ingest/delete/rename to the WAL so the
  on-disk image keeps up without a full rewrite per mutation;
- **compacts**: folds the WAL into a fresh snapshot (atomic rename)
  once it grows past ``snapshot_compact_every`` entries.

Failure handling is fallback-first: a missing, corrupt, stale, or
version-skewed snapshot means the system rebuilds from SQL exactly as if
no snapshot existed, counts the miss, and reports itself degraded only
in the ``repro_snapshot_opens_total{outcome="rebuild"}`` sense --
``snapshot="require"`` turns that fallback into a hard error for read
replicas that must never touch the database.

Byte-correctness: WAL replay parses the very same feature strings the
SQL rebuild would parse, and the restored generation counters continue
exactly where the writing process left them, so query-cache keys and
``structure_generation``-based invalidation agree between a process that
lived through the mutations and one that replayed them.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping as MappingABC
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.store import FeatureStore, FrameRecord
from repro.features.base import FeatureVector
from repro.indexing.rangefinder import Bucket
from repro.obs import NULL_OBS, Obs, log
from repro.resilience import NULL_POLICIES, FaultInjected, ResiliencePolicies
from repro.snapshot import (
    CorruptSnapshotError,
    CorruptWalError,
    Snapshot,
    SnapshotError,
    WalWriter,
    read_wal,
    remove_wal,
    wal_path_for,
    write_snapshot,
)

__all__ = [
    "SnapshotManager",
    "SnapshotRequiredError",
    "build_snapshot_payload",
    "load_snapshot_into_store",
    "open_snapshot_store",
    "init_worker_snapshot",
    "worker_snapshot_path",
    "worker_feature_matrix",
]

#: snapshot meta discriminator (a repro.snapshot file could hold anything)
_META_KIND = "cbvr-store"


class SnapshotRequiredError(RuntimeError):
    """``snapshot="require"`` and no valid snapshot could be opened."""


# -- lazy snapshot-backed feature mappings -------------------------------------


class _SnapshotFeatures:
    """Shared per-snapshot state: mmap matrices + row lookup per feature."""

    __slots__ = ("matrices", "tags", "rows_of")

    def __init__(self) -> None:
        #: feature name -> (n, d) mmap view, frames in ascending-id order
        self.matrices: Dict[str, np.ndarray] = {}
        self.tags: Dict[str, str] = {}
        #: feature name -> None (every frame has it; row == frame position)
        #: or frame_id -> row for features only a subset of frames carry
        self.rows_of: Dict[str, Optional[Dict[int, int]]] = {}

    def row(self, name: str, frame_id: int, position: int) -> int:
        """The frame's row in ``matrices[name]``; KeyError when absent."""
        rows = self.rows_of[name]  # KeyError: unknown feature, as dict would
        if rows is None:
            return position
        return rows[frame_id]


class _FrameFeatures(MappingABC):
    """One frame's ``features`` mapping, materialized lazily from the mmap.

    Ingested records hold plain dicts of parsed vectors; snapshot-backed
    records hold this instead, so opening a million-frame snapshot costs
    no vector copies -- a :class:`FeatureVector` is built (and its row
    paged in) only when the scalar path actually touches it.  The batched
    scoring path never does: it reads the seeded matrices directly.
    """

    __slots__ = ("_shared", "_frame_id", "_position")

    def __init__(self, shared: _SnapshotFeatures, frame_id: int, position: int):
        self._shared = shared
        self._frame_id = frame_id
        self._position = position

    def __getitem__(self, name: str) -> FeatureVector:
        row = self._shared.row(name, self._frame_id, self._position)
        return FeatureVector(
            kind=name,
            values=self._shared.matrices[name][row],
            tag=self._shared.tags[name],
        )

    def __contains__(self, name: object) -> bool:
        rows = self._shared.rows_of.get(name)  # type: ignore[arg-type]
        if rows is None:
            return name in self._shared.rows_of
        return self._frame_id in rows

    def __iter__(self) -> Iterator[str]:
        return (name for name in self._shared.rows_of if name in self)

    def __len__(self) -> int:
        return sum(1 for _ in self)


# -- store <-> snapshot translation --------------------------------------------


def build_snapshot_payload(
    store: FeatureStore, ivf=None
) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """``(arrays, meta)`` for :func:`repro.snapshot.write_snapshot`.

    Feature matrices are stored as float64 -- the ISSUE's float32 would
    halve the file but break the acceptance bar that mmap-served rankings
    are *byte-identical* to the SQL rebuild (feature strings parse to
    float64); the dtype is recorded per section, so a future narrower
    layout is a version bump away.
    """
    ids = store.frame_ids()
    records = [store.get(fid) for fid in ids]
    id_arr = np.asarray(ids, dtype=np.int64)
    arrays: Dict[str, np.ndarray] = {
        "frame_ids": id_arr,
        "frame_video_ids": np.asarray(
            [r.video_id for r in records], dtype=np.int64
        ),
        "bucket_min": np.asarray([r.bucket.min for r in records], dtype=np.int64),
        "bucket_max": np.asarray([r.bucket.max for r in records], dtype=np.int64),
    }
    features_meta: Dict[str, Dict[str, object]] = {}
    for name in sorted({n for r in records for n in r.features}):
        have = [i for i, r in enumerate(records) if name in r.features]
        tag = records[have[0]].features[name].tag
        if len(have) == len(records):
            matrix = store.feature_matrix(name)
            features_meta[name] = {"tag": tag, "rows": "all"}
        else:
            matrix = np.stack([records[i].features[name].values for i in have])
            arrays[f"feat_rows:{name}"] = id_arr[have]
            features_meta[name] = {"tag": tag, "rows": "subset"}
        arrays[f"feat:{name}"] = np.asarray(matrix, dtype=np.float64)
    videos: Dict[str, Dict[str, object]] = {}
    for vid in store.video_ids():
        first = store.frames_of_video(vid)[0]
        motion = store.video_motion(vid)
        videos[str(vid)] = {
            "name": first.video_name,
            "category": first.category,
            "motion": motion.to_string() if motion is not None else None,
        }
    meta: Dict[str, object] = {
        "kind": _META_KIND,
        "generation": store.generation,
        "structure_generation": store.structure_generation,
        "n_frames": len(ids),
        "frame_names": [r.frame_name for r in records],
        "features": features_meta,
        "videos": videos,
    }
    if ivf is not None:
        state = ivf.export_state()
        if state is not None:
            ivf_arrays, ivf_meta = state
            for key, value in ivf_arrays.items():
                arrays[f"ivf:{key}"] = value
            meta["ivf"] = ivf_meta
    return arrays, meta


def load_snapshot_into_store(snap: Snapshot, store: FeatureStore) -> None:
    """Restore the frame population from an open snapshot (no WAL yet).

    Every full-coverage feature matrix is seeded into the store's stack
    cache as the raw mmap view, so the first query reads pages straight
    from the file instead of re-stacking vectors.
    """
    meta = snap.meta
    if meta.get("kind") != _META_KIND:
        raise CorruptSnapshotError(
            f"{snap.path}: not a store snapshot (kind={meta.get('kind')!r})"
        )
    ids = snap.section("frame_ids")
    vids = snap.section("frame_video_ids")
    bucket_min = snap.section("bucket_min")
    bucket_max = snap.section("bucket_max")
    frame_names = list(meta["frame_names"])
    if not (len(ids) == len(vids) == len(bucket_min) == len(bucket_max) == len(frame_names)):
        raise CorruptSnapshotError(f"{snap.path}: frame table sections disagree")
    videos: Dict[str, Dict[str, object]] = meta["videos"]
    shared = _SnapshotFeatures()
    for name, fmeta in meta["features"].items():
        shared.matrices[name] = snap.section(f"feat:{name}")
        shared.tags[name] = str(fmeta["tag"])
        if fmeta["rows"] == "all":
            shared.rows_of[name] = None
        else:
            shared.rows_of[name] = {
                int(fid): row
                for row, fid in enumerate(snap.section(f"feat_rows:{name}"))
            }
    records: List[FrameRecord] = []
    for pos in range(len(ids)):
        fid = int(ids[pos])
        vid = int(vids[pos])
        vinfo = videos[str(vid)]
        records.append(
            FrameRecord(
                frame_id=fid,
                video_id=vid,
                video_name=str(vinfo["name"]),
                frame_name=str(frame_names[pos]),
                category=vinfo.get("category"),
                bucket=Bucket(int(bucket_min[pos]), int(bucket_max[pos])),
                features=_FrameFeatures(shared, fid, pos),
            )
        )
    motion = {
        int(vid): FeatureVector.from_string("motion", str(vinfo["motion"]))
        for vid, vinfo in videos.items()
        if vinfo.get("motion")
    }
    store.load_snapshot_state(
        records,
        motion,
        generation=int(meta["generation"]),
        structure_generation=int(meta["structure_generation"]),
    )
    for name, rows in shared.rows_of.items():
        if rows is None:
            store.seed_matrix(name, shared.matrices[name])


def open_snapshot_store(path: str) -> Tuple[Snapshot, FeatureStore]:
    """Open a snapshot + its WAL into a fresh read-replica store.

    The pure-mmap analogue of :meth:`SnapshotManager.try_open` for callers
    that have only a snapshot file and no database -- shard workers and the
    scatter-gather coordinator.  No fallback: a missing or corrupt file
    raises, because a replica silently serving an empty partition would
    corrupt merged rankings.  The caller owns closing the returned
    :class:`~repro.snapshot.Snapshot` (the store's seeded matrices view its
    mmap).
    """
    snap = Snapshot.open(path)
    try:
        store = FeatureStore()
        base = (
            int(snap.meta["generation"]),
            int(snap.meta["structure_generation"]),
        )
        entries = read_wal(wal_path_for(path), base[0], base[1])
        load_snapshot_into_store(snap, store)
        for entry in entries:
            _replay_wal_entry(store, entry)
    except Exception:
        snap.close()
        raise
    return snap, store


def _replay_wal_entry(store: FeatureStore, entry: Dict[str, object]) -> None:
    """Apply one WAL record through the exact mutation path ingest used.

    ``add_video`` re-parses the recorded feature strings with
    ``FeatureVector.from_string`` -- the same code the SQL rebuild runs --
    so a replayed store is byte-identical to a rebuilt one.
    """
    op = entry.get("op")
    if op == "add_video":
        video_id = int(entry["video_id"])
        name = str(entry["name"])
        category = entry.get("category")
        for frame in entry["frames"]:
            features = {
                fname: FeatureVector.from_string(fname, text)
                for fname, text in frame["features"].items()
            }
            store.add(
                FrameRecord(
                    frame_id=int(frame["frame_id"]),
                    video_id=video_id,
                    video_name=name,
                    frame_name=str(frame["frame_name"]),
                    category=category,
                    bucket=Bucket(int(frame["bucket"][0]), int(frame["bucket"][1])),
                    features=features,
                )
            )
        if entry.get("motion"):
            store.set_video_motion(
                video_id, FeatureVector.from_string("motion", str(entry["motion"]))
            )
    elif op == "delete_video":
        store.remove_video(int(entry["video_id"]))
    elif op == "rename_video":
        store.rename_video(int(entry["video_id"]), str(entry["name"]))
    else:
        raise CorruptWalError(f"unknown WAL op {op!r}")


# -- the manager ---------------------------------------------------------------


class SnapshotManager:
    """Owns one system's snapshot file, WAL, and compaction policy."""

    def __init__(
        self,
        config,
        db,
        store: FeatureStore,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ):
        self.config = config
        self.db = db
        self.store = store
        self.mode: str = config.snapshot
        path = config.snapshot_path
        if path is None and db.path is not None:
            path = db.path + ".snap"
        self.path: Optional[str] = path
        self._policies = policies
        self._obs = obs
        self._log = log.get_logger(__name__)
        self._engine = None  # attach_engine; needed for IVF state
        self._snapshot: Optional[Snapshot] = None
        self._wal: Optional[WalWriter] = None
        self._served_from = "none"
        self._m_opens = obs.counter(
            "repro_snapshot_opens_total",
            "System cold starts by source (mmap snapshot vs SQL rebuild).",
            labelnames=("outcome",),
        )
        self._m_open_seconds = obs.histogram(
            "repro_snapshot_open_seconds",
            "Snapshot open + WAL replay wall time.",
        )
        self._m_compact_seconds = obs.histogram(
            "repro_snapshot_compact_seconds",
            "Snapshot compaction (WAL fold + rewrite) wall time.",
        )
        self._m_compactions = obs.counter(
            "repro_snapshot_compactions_total",
            "Snapshot compactions, by outcome.",
            labelnames=("outcome",),
        )
        self._m_writes = obs.counter(
            "repro_snapshot_writes_total", "Full snapshot files written."
        )
        self._m_wal_depth = obs.gauge(
            "repro_snapshot_wal_depth",
            "Mutations in the WAL since the base snapshot.",
        )

    @property
    def active(self) -> bool:
        """Whether this system participates in snapshot serving at all."""
        return self.mode != "off" and self.path is not None

    @property
    def served_from(self) -> str:
        """How this process started: ``mmap``, ``rebuild``, or ``none``."""
        return self._served_from

    @property
    def wal_depth(self) -> int:
        return self._wal.depth if self._wal is not None else 0

    def attach_engine(self, engine) -> None:
        """Bind the search engine (its IVF index rides in the snapshot)."""
        self._engine = engine

    # -- opening ---------------------------------------------------------------

    def try_open(self) -> bool:
        """Serve from the snapshot; ``False`` -> caller rebuilds from SQL.

        On any failure in ``auto`` mode -- missing file, checksum mismatch,
        foreign version/endianness, stale WAL, or disagreement with the
        database -- the store is left empty, a fallback is counted, and the
        caller runs the usual SQL rebuild.  ``require`` escalates the same
        failures to :class:`SnapshotRequiredError`.
        """
        if not self.active:
            self._served_from = "rebuild"
            return False
        t0 = time.perf_counter()
        try:
            self._policies.fire("snapshot.open")
            snap = Snapshot.open(self.path)
            base = (
                int(snap.meta["generation"]),
                int(snap.meta["structure_generation"]),
            )
            entries = read_wal(wal_path_for(self.path), base[0], base[1])
            load_snapshot_into_store(snap, self.store)
            for entry in entries:
                _replay_wal_entry(self.store, entry)
            self._check_freshness()
        except FileNotFoundError:
            return self._open_failed("missing snapshot file")
        except (SnapshotError, FaultInjected, KeyError, ValueError, TypeError) as exc:
            # malformed meta surfaces as KeyError/ValueError; a partially
            # replayed store is discarded before the SQL rebuild
            self.store.clear()
            return self._open_failed(f"{type(exc).__name__}: {exc}")
        self._snapshot = snap
        self._wal = WalWriter(wal_path_for(self.path), base[0], base[1])
        self._served_from = "mmap"
        if self._engine is not None and self._engine.ann is not None:
            ivf_meta = snap.meta.get("ivf")
            if ivf_meta is not None:
                ivf_arrays = {
                    name[len("ivf:") :]: snap.section(name)
                    for name in snap.section_names()
                    if name.startswith("ivf:")
                }
                self._engine.ann.load_state(ivf_arrays, ivf_meta)
        elapsed = time.perf_counter() - t0
        self._m_opens.labels(outcome="mmap").inc()
        self._m_open_seconds.observe(elapsed)
        self._m_wal_depth.set(self._wal.depth)
        self._log.info(
            "snapshot.open",
            path=self.path,
            frames=len(self.store),
            wal_entries=len(entries),
            ms=round(elapsed * 1000.0, 2),
        )
        return True

    def _open_failed(self, reason: str) -> bool:
        if self.mode == "require":
            raise SnapshotRequiredError(
                f"snapshot='require' but {self.path}: {reason}"
            )
        self._served_from = "rebuild"
        self._m_opens.labels(outcome="rebuild").inc()
        self._policies.note_fallback("snapshot_rebuild")
        self._log.warning("snapshot.fallback", path=self.path, reason=reason)
        return False

    def _check_freshness(self) -> None:
        """The snapshot + WAL must reproduce exactly the database's frames.

        Durable systems compare frame count and max id (cheap aggregates)
        against the replayed store; a snapshot another writer left behind
        -- or one that simply missed the last transactions -- is stale and
        falls back to the rebuild.  In-memory systems skip the check: with
        an explicit ``snapshot_path`` they are pure mmap read replicas that
        by design never consult SQL (see docs/snapshot.md).
        """
        if not self.db.is_durable:
            return
        count = self.db.execute("SELECT COUNT(*) FROM KEY_FRAMES").scalar()
        max_id = self.db.execute("SELECT MAX(I_ID) FROM KEY_FRAMES").scalar()
        ids = self.store.frame_ids()
        store_max = ids[-1] if ids else None
        if int(count) != len(ids) or (max_id is None) != (store_max is None) or (
            max_id is not None and int(max_id) != int(store_max)
        ):
            raise CorruptSnapshotError(
                f"snapshot+WAL holds {len(ids)} frames (max id {store_max}), "
                f"database holds {count} (max id {max_id}): stale snapshot"
            )

    # -- incremental recording -------------------------------------------------

    def _append(self, op: str, payload: Dict[str, object]) -> None:
        if self._wal is None:
            return
        try:
            self._wal.append(op, payload)
        except OSError as exc:
            # never fail the (already committed) mutation over WAL I/O;
            # the stale snapshot is caught by _check_freshness on next open
            self._log.warning(
                "snapshot.wal_error", op=op, error=f"{type(exc).__name__}: {exc}"
            )
            self._policies.note_fallback("snapshot_wal_disabled")
            self._wal = None
            return
        self._m_wal_depth.set(self._wal.depth)
        self.maybe_compact()

    def record_add_video(
        self,
        video_id: int,
        name: str,
        category: Optional[str],
        motion: Optional[FeatureVector],
        records: List[FrameRecord],
    ) -> None:
        """Log one committed ``add_video`` (call after the store mirror)."""
        self._append(
            "add_video",
            {
                "video_id": video_id,
                "name": name,
                "category": category,
                "motion": motion.to_string() if motion is not None else None,
                "frames": [
                    {
                        "frame_id": r.frame_id,
                        "frame_name": r.frame_name,
                        "bucket": [r.bucket.min, r.bucket.max],
                        "features": {
                            fname: vector.to_string()
                            for fname, vector in r.features.items()
                        },
                    }
                    for r in records
                ],
            },
        )

    def record_delete(self, video_id: int) -> None:
        self._append("delete_video", {"video_id": video_id})

    def record_rename(self, video_id: int, new_name: str) -> None:
        self._append("rename_video", {"video_id": video_id, "name": new_name})

    # -- writing / compaction --------------------------------------------------

    def write(self) -> str:
        """Write a full snapshot of the live store (and IVF) right now.

        Atomic (tmp + rename); on success the WAL restarts empty at the
        new base generation.  This is both the explicit ``repro snapshot
        write`` / ``checkpoint()`` path and the compaction rewrite.
        """
        if self.path is None:
            raise SnapshotError(
                "no snapshot path: pass SystemConfig(snapshot_path=...) or "
                "open a durable database"
            )
        ivf = self._engine.ann if self._engine is not None else None
        arrays, meta = build_snapshot_payload(self.store, ivf)
        write_snapshot(self.path, arrays, meta)
        remove_wal(self.path)
        self._wal = WalWriter(
            wal_path_for(self.path),
            self.store.generation,
            self.store.structure_generation,
        )
        self._m_writes.inc()
        self._m_wal_depth.set(0)
        self._log.info(
            "snapshot.write", path=self.path, frames=len(self.store)
        )
        return self.path

    def maybe_compact(self) -> bool:
        """Compact when the WAL has outgrown ``snapshot_compact_every``."""
        limit = self.config.snapshot_compact_every
        if limit <= 0 or self._wal is None or self._wal.depth < limit:
            return False
        return self.compact()

    def compact(self) -> bool:
        """Fold the WAL into a fresh snapshot; ``False`` on failure.

        A failed (or fault-injected, point ``snapshot.compact``) run
        leaves the old snapshot + WAL fully intact -- the write is atomic
        and the WAL is only truncated after the rename lands -- so a kill
        mid-compact costs nothing but the retry.
        """
        t0 = time.perf_counter()
        try:
            self._policies.fire("snapshot.compact")
            self.write()
        except (FaultInjected, SnapshotError, OSError) as exc:
            self._m_compactions.labels(outcome="error").inc()
            self._policies.note_fallback("snapshot_compact_failed")
            self._log.warning(
                "snapshot.compact_failed", error=f"{type(exc).__name__}: {exc}"
            )
            return False
        elapsed = time.perf_counter() - t0
        self._m_compactions.labels(outcome="ok").inc()
        self._m_compact_seconds.observe(elapsed)
        self._log.info("snapshot.compact", ms=round(elapsed * 1000.0, 2))
        return True

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Optional[Dict[str, object]]:
        """Summary for ``system.metrics()`` (None when snapshots are off)."""
        if not self.active:
            return None
        return {
            "mode": self.mode,
            "path": self.path,
            "served_from": self._served_from,
            "wal_depth": self.wal_depth,
            "generation": self.store.generation,
            "structure_generation": self.store.structure_generation,
        }

    def close(self) -> None:
        """Release the mmap (idempotent; part of system shutdown)."""
        with self._obs.span("snapshot.close"):
            if self._snapshot is not None:
                self._snapshot.close()
                self._snapshot = None


# -- worker-process access -----------------------------------------------------
#
# Forked/spawned pool workers must not inherit (or unpickle) the parent's
# matrices; instead the pool initializer hands them the snapshot path and
# they map the same file -- the OS shares the physical pages.  Module
# state is guarded for R15: the initializer runs once per worker, but
# in-process pools (serial fallback) share this module with the parent.

_worker_lock = threading.Lock()
_worker_path: Optional[str] = None
_worker_snapshot: Optional[Snapshot] = None


def init_worker_snapshot(path: Optional[str]) -> None:
    """Worker-pool initializer: remember the snapshot to map lazily."""
    global _worker_path, _worker_snapshot
    with _worker_lock:
        _worker_path = path
        _worker_snapshot = None


def worker_snapshot_path() -> Optional[str]:
    """The snapshot path this worker was initialized with (None = no mmap)."""
    with _worker_lock:
        return _worker_path


def worker_feature_matrix(name: str) -> Optional[np.ndarray]:
    """A feature's stacked matrix, mapped in this worker process.

    Returns None when the pool was started without a snapshot; raises
    ``KeyError`` for a feature the snapshot does not carry.
    """
    global _worker_snapshot
    with _worker_lock:
        if _worker_path is None:
            return None
        if _worker_snapshot is None:
            _worker_snapshot = Snapshot.open(_worker_path)
        return _worker_snapshot.section(f"feat:{name}")
