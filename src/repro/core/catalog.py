"""Schema bootstrap: the paper's two tables (Fig. 1 ER diagram, §3.4 DDL).

Deviations from the paper's DDL, each forced by real measurements:

- Feature strings are longer than Oracle's VARCHAR2(1500) allows (a 256-bin
  correlogram with float repr easily exceeds 4000 chars), so the feature
  columns here are VARCHAR2(65000).
- ``KEY_FRAMES`` gains ``ACC``, ``NAIVE`` and ``REGIONS`` columns: the
  paper's evaluation uses the correlogram, naive and region features but its
  printed DDL has no columns for them (it stores only ``MAJORREGIONS``).
- ``VIDEO_STORE`` gains a ``CATEGORY`` column: the corpus is organized by
  category ("e-learning, sports, cartoon, movies, etc.", §5) and the
  relevance ground truth needs it.
"""

from __future__ import annotations

from repro.db.engine import Database

__all__ = [
    "VIDEO_STORE_DDL",
    "KEY_FRAMES_DDL",
    "FEATURE_COLUMNS",
    "bootstrap",
    "is_bootstrapped",
]

#: Feature registry name -> KEY_FRAMES column.
FEATURE_COLUMNS = {
    "sch": "SCH",
    "glcm": "GLCM",
    "gabor": "GABOR",
    "tamura": "TAMURA",
    "acc": "ACC",
    "ehd": "EHD",
    "naive": "NAIVE",
    "regions": "REGIONS",
}

VIDEO_STORE_DDL = """
CREATE TABLE "VIDEO_STORE" (
  "V_ID"     NUMBER NOT NULL ENABLE,
  "V_NAME"   VARCHAR2(60),
  "CATEGORY" VARCHAR2(40),
  "VIDEO"    ORD_VIDEO,
  "STREAM"   BLOB,
  "MOTION"   VARCHAR2(4000),
  "DOSTORE"  DATE,
  PRIMARY KEY ("V_ID") ENABLE
)
"""

KEY_FRAMES_DDL = """
CREATE TABLE "KEY_FRAMES" (
  "I_ID"         NUMBER NOT NULL ENABLE,
  "I_NAME"       VARCHAR2(80) NOT NULL ENABLE,
  "IMAGE"        ORD_IMAGE,
  "MIN"          NUMBER,
  "MAX"          NUMBER,
  "SCH"          VARCHAR2(65000),
  "GLCM"         VARCHAR2(65000),
  "GABOR"        VARCHAR2(65000),
  "TAMURA"       VARCHAR2(65000),
  "ACC"          VARCHAR2(65000),
  "EHD"          VARCHAR2(65000),
  "NAIVE"        VARCHAR2(65000),
  "REGIONS"      VARCHAR2(65000),
  "MAJORREGIONS" NUMBER,
  "V_ID"         NUMBER,
  PRIMARY KEY ("I_ID") ENABLE
)
"""


def is_bootstrapped(db: Database) -> bool:
    """True if both system tables exist."""
    names = set(db.table_names())
    return {"VIDEO_STORE", "KEY_FRAMES"} <= names


def bootstrap(db: Database) -> None:
    """Create the system tables (idempotent) and the V_ID secondary index."""
    names = set(db.table_names())
    if "VIDEO_STORE" not in names:
        db.execute(VIDEO_STORE_DDL)
    if "KEY_FRAMES" not in names:
        db.execute(KEY_FRAMES_DDL)
    db.create_index("KEY_FRAMES", "V_ID")
