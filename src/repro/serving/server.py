"""Asyncio HTTP/1.1 front-end with micro-batched search.

``POST /search`` takes the fast path: admission control (shed/degrade on
queue depth), then a :class:`~repro.core.search.QueryRequest` with an
already-ticking deadline goes through the :class:`MicroBatcher`, which
coalesces concurrent queries into one ``engine.query_batch`` call.
Every other route delegates to the blocking
:class:`~repro.web.api.CbvrApi` on an executor thread, so the asyncio
server exposes the exact same API surface (including ``/metrics`` and
the admin routes) as the ThreadingHTTPServer it fronts.

The HTTP layer itself is deliberately small: request line + headers via
``readuntil``, body via Content-Length, keep-alive by default.  Errors
go through the same :func:`~repro.web.api.error_response_for` ladder as
the blocking server, plus one serving-only rung: an
:class:`~repro.serving.admission.OverloadedError` becomes 429 with a
``Retry-After`` header.  Overload never produces a 5xx or a hang.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
import urllib.parse
from functools import partial
from typing import Dict, Optional, Tuple

from repro.core.search import QueryRequest
from repro.core.system import VideoRetrievalSystem
from repro.obs import log
from repro.resilience import Deadline
from repro.serving.admission import AdmissionController, OverloadedError
from repro.serving.batcher import MicroBatcher
from repro.sharding import maybe_attach_sharded
from repro.web.api import CbvrApi, error_response_for, parse_search_request, search_payload

__all__ = ["AsyncCbvrServer", "make_async_server"]

_log = log.get_logger(__name__)

#: bodies larger than this are rejected before buffering (64 MiB)
_MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

# status, content-type, payload, extra headers -- CbvrApi's FullResponse shape
_Reply = Tuple[int, str, bytes, Dict[str, str]]


class AsyncCbvrServer:
    """One retrieval system behind an asyncio listener."""

    def __init__(
        self, system: VideoRetrievalSystem, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        maybe_attach_sharded(system)
        self.system = system
        self.api = CbvrApi(system)
        self.host = host
        self.port = port
        config = system.config
        self.admission = AdmissionController(
            config, obs=system.obs, policies=system.resilience
        )
        self.batcher = MicroBatcher(
            self._execute_batch,
            window_ms=config.batch_window_ms,
            batch_max=config.batch_max,
            obs=system.obs,
        )
        self._server: Optional["asyncio.base_events.Server"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._clients: set = set()
        self._m_requests = system.obs.counter(
            "repro_serving_requests_total",
            "Requests handled by the asyncio front-end, by route and status.",
            labelnames=("route", "status"),
        )
        self._m_request_seconds = system.obs.histogram(
            "repro_serving_request_seconds",
            "Asyncio front-end wall time from read to response.",
            labelnames=("route",),
            buckets=system.obs.latency_buckets,
        )

    def _execute_batch(self, requests):
        # Resolved per call: a snapshot restore / shard attach may swap engines.
        return self.system.engine.query_batch(requests)

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.batcher.start()
        self._server = await asyncio.start_server(self._handle_client, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Keep-alive clients may still be parked on readuntil(): cancel them
        # so the loop closes clean instead of destroying pending tasks.
        for task in list(self._clients):
            task.cancel()
        if self._clients:
            await asyncio.gather(*self._clients, return_exceptions=True)
        await self.batcher.stop()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def serve_blocking(self) -> None:
        """CLI entry point: run the event loop on this thread until killed."""
        asyncio.run(self.serve_forever())

    def start_in_thread(self) -> str:
        """Run the server on a daemon-thread event loop; return its base URL.

        The shape tests and the load gate use: start, hammer over real
        sockets, :meth:`stop`.
        """
        started = threading.Event()
        loop = asyncio.new_event_loop()
        self._loop = loop

        def run() -> None:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            started.set()
            loop.run_forever()
            loop.run_until_complete(self.stop_async())
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-serving", daemon=True)
        self._thread.start()
        started.wait(timeout=10)
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server and join its thread."""
        if self._thread is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._thread = None

    # -- connection handling ---------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._clients.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                parsed = urllib.parse.urlsplit(target)
                query = dict(urllib.parse.parse_qsl(parsed.query))
                keep_alive = headers.get("connection", "").lower() != "close"
                path = parsed.path.rstrip("/") or "/"
                if method == "POST" and path == "/search":
                    reply = await self._handle_search(body, query)
                else:
                    reply = await self._handle_blocking(method, parsed.path, body, headers, query)
                await self._write_response(writer, reply, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Only stop_async() cancels us; end normally so the streams
            # done-callback doesn't re-raise into the loop's handler.
            pass
        finally:
            if task is not None:
                self._clients.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionResetError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length < 0 or length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, reply: _Reply, keep_alive: bool
    ) -> None:
        status, content_type, payload, extra = reply
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
        await writer.drain()

    # -- routes ----------------------------------------------------------------

    async def _handle_search(self, body: bytes, query: Dict[str, str]) -> _Reply:
        t0 = time.perf_counter()
        extra: Dict[str, str] = {}
        try:
            degrade = self.admission.admit(self.batcher.depth)
            image, feature_list, top_k, explain = parse_search_request(body, query)
            deadline = None
            policies = self.system.resilience
            if policies.enabled and policies.request_deadline is not None:
                # Created here, not in the engine: queue wait burns budget.
                deadline = Deadline(policies.request_deadline)
            request = QueryRequest(
                image=image, features=feature_list, top_k=top_k, deadline=deadline
            )
            if degrade is not None:
                request.features = degrade.features
                request.nprobe = degrade.nprobe
                extra["X-Degraded"] = "load"
            results = await self.batcher.submit(request)
            payload = json.dumps(search_payload(results, explain)).encode()
            reply: _Reply = (200, "application/json", payload, extra)
        except OverloadedError as exc:
            body_429 = json.dumps(
                {
                    "error": str(exc),
                    "error_type": "overloaded",
                    "retry_after": exc.retry_after,
                }
            ).encode()
            reply = (429, "application/json", body_429, {"Retry-After": str(exc.retry_after)})
        except Exception as exc:  # noqa: BLE001 -- same last-resort ladder as CbvrApi
            mapped = error_response_for(exc)
            if mapped is not None:
                (status, content_type, payload), headers = mapped
                reply = (status, content_type, payload, headers)
            else:
                _log.error(
                    "serving.unhandled", route="/search", error=f"{type(exc).__name__}: {exc}"
                )
                envelope = json.dumps(
                    {"error": "internal server error", "error_type": "internal"}
                ).encode()
                reply = (500, "application/json", envelope, {})
        self._m_requests.labels(route="/search", status=str(reply[0])).inc()
        self._m_request_seconds.labels(route="/search").observe(time.perf_counter() - t0)
        return reply

    async def _handle_blocking(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
        query: Dict[str, str],
    ) -> _Reply:
        assert self._loop is not None
        ctx = contextvars.copy_context()
        call = partial(
            ctx.run, self.api.handle_full, method, path, body=body, headers=headers, query=query
        )
        status, content_type, payload, extra = await self._loop.run_in_executor(None, call)
        self._m_requests.labels(route="(blocking)", status=str(status)).inc()
        return status, content_type, payload, extra


def make_async_server(
    system: VideoRetrievalSystem, host: str = "127.0.0.1", port: int = 0
) -> AsyncCbvrServer:
    """The asyncio sibling of :func:`repro.web.server.make_server`."""
    return AsyncCbvrServer(system, host=host, port=port)
