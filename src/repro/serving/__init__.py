"""``repro.serving``: the asyncio front-end with query micro-batching.

Three pieces over the blocking :mod:`repro.web` stack:

- :mod:`repro.serving.admission` -- the degrade-before-shed ladder: a
  bounded queue depth decides whether a request is accepted as-is,
  accepted degraded (fewer features, lower ``ann_nprobe``), or shed with
  HTTP 429 + Retry-After;
- :mod:`repro.serving.batcher` -- the micro-batcher: concurrent search
  requests arriving within ``batch_window_ms`` (up to ``batch_max``)
  coalesce into one :meth:`~repro.core.search.SearchEngine.query_batch`
  call -- one batched scoring pass against the store, one scatter per
  shard for the sharded engine -- with rankings byte-identical to serial
  execution;
- :mod:`repro.serving.server` -- a minimal asyncio HTTP/1.1 server:
  ``POST /search`` flows through admission + batching, every other
  route delegates to the blocking :class:`~repro.web.api.CbvrApi` in an
  executor thread.

See ``docs/serving.md`` for the queueing model, batching semantics, the
shed/degrade ladder, and the SLO runbook.
"""

from repro.serving.admission import AdmissionController, DegradeDecision, OverloadedError
from repro.serving.batcher import MicroBatcher
from repro.serving.server import AsyncCbvrServer, make_async_server

__all__ = [
    "AdmissionController",
    "DegradeDecision",
    "OverloadedError",
    "MicroBatcher",
    "AsyncCbvrServer",
    "make_async_server",
]
