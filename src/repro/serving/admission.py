"""Admission control for the asyncio front-end: degrade before shedding.

The controller looks at one signal -- the micro-batcher's queue depth --
and walks a two-rung ladder:

1. depth >= ``serving_degrade_depth``: the request is still admitted,
   but degraded -- the feature set is truncated to the first
   ``serving_degrade_features`` configured features and, when ANN is on,
   ``ann_nprobe`` is halved.  Cheaper per query, same contract.
2. depth >= ``serving_queue_limit``: the request is shed with
   :class:`OverloadedError`, which the server maps to HTTP 429 with a
   ``Retry-After`` estimate of how long the backlog takes to drain.

Shed and degrade decisions are counted through :mod:`repro.obs` so the
load gate can cross-check server-side counters against client-observed
rejections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.config import SystemConfig
from repro.obs import NULL_OBS, Obs
from repro.resilience import NULL_POLICIES, ResiliencePolicies

__all__ = ["AdmissionController", "DegradeDecision", "OverloadedError"]


class OverloadedError(Exception):
    """A request was shed because the serving queue hit its limit."""

    def __init__(self, depth: int, limit: int, retry_after: int) -> None:
        super().__init__(f"serving queue full ({depth} queued, limit {limit})")
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class DegradeDecision:
    """How an admitted-but-degraded request should be cheapened."""

    features: Tuple[str, ...]
    nprobe: Optional[int]


class AdmissionController:
    def __init__(
        self,
        config: SystemConfig,
        obs: Obs = NULL_OBS,
        policies: ResiliencePolicies = NULL_POLICIES,
    ) -> None:
        self.queue_limit = config.serving_queue_limit
        self.degrade_depth = config.serving_degrade_depth
        self._batch_max = config.batch_max
        self._window_s = config.batch_window_ms / 1000.0
        self._policies = policies
        features = tuple(config.features[: config.serving_degrade_features])
        nprobe = max(1, config.ann_nprobe // 2) if config.ann else None
        self._decision = DegradeDecision(features=features, nprobe=nprobe)
        self._m_admitted = obs.counter(
            "repro_serving_admitted_total", "Requests admitted by the serving front-end"
        )
        self._m_shed = obs.counter(
            "repro_serving_shed_total", "Requests shed (429) by admission control"
        )
        self._m_degraded = obs.counter(
            "repro_serving_degraded_total", "Requests admitted in degraded mode under load"
        )

    def retry_after(self, depth: int) -> int:
        """Whole seconds until a backlog of ``depth`` requests drains.

        The batcher retires at most ``batch_max`` requests per window, so
        the wait is roughly ``ceil(depth / batch_max)`` windows; scoring
        time is unknown here, so the floor is one second.
        """
        windows = math.ceil(depth / max(1, self._batch_max))
        return max(1, math.ceil(windows * self._window_s))

    def admit(self, depth: int) -> Optional[DegradeDecision]:
        """Gate one request given the current queue depth.

        Raises :class:`OverloadedError` to shed; returns a
        :class:`DegradeDecision` to admit degraded; returns ``None`` to
        admit untouched.
        """
        if depth >= self.queue_limit:
            self._m_shed.inc()
            raise OverloadedError(depth, self.queue_limit, self.retry_after(depth))
        self._m_admitted.inc()
        if self.degrade_depth > 0 and depth >= self.degrade_depth:
            self._m_degraded.inc()
            self._policies.note_degraded("serving.load")
            return self._decision
        return None
