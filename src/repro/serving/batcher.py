"""The query micro-batcher: coalesce concurrent searches into one call.

Requests land on an (unbounded) asyncio queue -- admission control in
front of :meth:`MicroBatcher.submit` is what bounds it.  The run loop
blocks on the first request, then keeps draining the queue until either
``batch_window_ms`` elapses or the batch holds ``batch_max`` requests.
Before dispatch, requests whose future was cancelled or whose deadline
already expired while queueing are dropped from the batch (the latter
fail with :class:`~repro.resilience.DeadlineExceeded` -- queue wait
counts against the request budget).  The surviving batch runs through
``engine.query_batch`` on an executor thread under a ``serving.batch``
span, and per-request outcomes are demultiplexed back onto the futures.

Batching never changes rankings: ``query_batch`` runs the identical
per-query kernels as serial execution, so results are byte-identical
(property-tested in ``tests/serving/``).  The win is amortised
per-request overhead and, for the sharded engine, one scatter per shard
per batch instead of one per request.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from functools import partial
from typing import Callable, List, Optional, Sequence

from repro.core.results import SearchResults
from repro.core.search import QueryRequest
from repro.obs import NULL_OBS, Obs
from repro.resilience import DeadlineExceeded

__all__ = ["MicroBatcher"]

_SENTINEL = object()


class _Item:
    __slots__ = ("request", "future", "enqueued")

    def __init__(self, request: QueryRequest, future: "asyncio.Future") -> None:
        self.request = request
        self.future = future
        self.enqueued = time.perf_counter()


class MicroBatcher:
    """Coalesce concurrent :class:`QueryRequest`\\ s into batched scoring calls."""

    def __init__(
        self,
        execute: Callable[[List[QueryRequest]], Sequence[object]],
        *,
        window_ms: float,
        batch_max: int,
        obs: Obs = NULL_OBS,
    ) -> None:
        self._execute = execute
        self._window_s = max(0.0, window_ms) / 1000.0
        self._batch_max = max(1, batch_max)
        self._obs = obs
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._task: Optional["asyncio.Task"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._m_depth = obs.gauge(
            "repro_serving_queue_depth", "Requests currently waiting in the serving queue"
        )
        self._m_queue_wait = obs.histogram(
            "repro_serving_queue_wait_seconds",
            "Time a request spent queued before its batch dispatched",
            buckets=obs.latency_buckets,
        )
        self._m_batches = obs.counter(
            "repro_serving_batches_total", "Micro-batches dispatched to the engine"
        )
        self._m_batch_size = obs.histogram(
            "repro_serving_batch_size",
            "Requests per dispatched micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_expired = obs.counter(
            "repro_serving_expired_total",
            "Requests whose deadline expired while waiting in the serving queue",
        )
        self._m_cancelled = obs.counter(
            "repro_serving_cancelled_total",
            "Requests cancelled by the client while waiting in the serving queue",
        )

    @property
    def depth(self) -> int:
        """Requests currently queued (the admission-control signal)."""
        return self._queue.qsize()

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._task = self._loop.create_task(self._run())

    async def stop(self) -> None:
        """Drain nothing further: flush what is queued, then stop the loop."""
        if self._task is None:
            return
        self._queue.put_nowait(_SENTINEL)
        await self._task
        self._task = None

    async def submit(self, request: QueryRequest) -> SearchResults:
        """Enqueue one request and await its demultiplexed result.

        Raises whatever the engine raised for this request -- batchmates
        are isolated; one poisoned query never fails the rest.
        """
        assert self._loop is not None, "MicroBatcher.start() was never awaited"
        future: "asyncio.Future" = self._loop.create_future()
        self._queue.put_nowait(_Item(request, future))
        self._m_depth.set(self._queue.qsize())
        return await future

    async def _run(self) -> None:
        assert self._loop is not None
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _SENTINEL:
                break
            batch = [item]
            deadline_at = self._loop.time() + self._window_s
            while len(batch) < self._batch_max:
                remaining = deadline_at - self._loop.time()
                if remaining <= 0:
                    # Window elapsed: take whatever is already queued, no waiting.
                    try:
                        nxt = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                else:
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(), remaining)
                    except asyncio.TimeoutError:
                        continue
                if nxt is _SENTINEL:
                    stopping = True
                    break
                batch.append(nxt)
            self._m_depth.set(self._queue.qsize())
            await self._dispatch(batch)
        # Fail anything still queued after shutdown rather than hanging clients.
        while not self._queue.empty():
            leftover = self._queue.get_nowait()
            if leftover is not _SENTINEL and not leftover.future.done():
                leftover.future.set_exception(RuntimeError("serving batcher stopped"))

    def _admit_to_batch(self, batch: List[_Item]) -> List[_Item]:
        live: List[_Item] = []
        for item in batch:
            if item.future.done() or item.future.cancelled():
                self._m_cancelled.inc()
                continue
            deadline = item.request.deadline
            if deadline is not None and deadline.expired():
                self._m_expired.inc()
                item.future.set_exception(
                    DeadlineExceeded("serving.queue", deadline.budget, deadline.elapsed())
                )
                continue
            live.append(item)
        return live

    async def _dispatch(self, batch: List[_Item]) -> None:
        assert self._loop is not None
        live = self._admit_to_batch(batch)
        if not live:
            return
        now = time.perf_counter()
        for item in live:
            self._m_queue_wait.observe(now - item.enqueued)
        self._m_batches.inc()
        self._m_batch_size.observe(len(live))
        requests = [item.request for item in live]
        # Copy the loop task's context so the batch span (and everything the
        # engine stitches under it) lands in this trace, not the executor
        # thread's leftover state.
        ctx = contextvars.copy_context()
        try:
            outcomes = await self._loop.run_in_executor(
                None, partial(ctx.run, self._scored_batch, requests)
            )
        except Exception as exc:  # engine-level failure: fail the whole batch
            for item in live:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, outcome in zip(live, outcomes):
            if item.future.done():
                continue
            if isinstance(outcome, BaseException):
                item.future.set_exception(outcome)
            else:
                item.future.set_result(outcome)

    def _scored_batch(self, requests: List[QueryRequest]) -> Sequence[object]:
        with self._obs.span("serving.batch", size=len(requests)) as span:
            outcomes = self._execute(requests)
            errors = sum(1 for o in outcomes if isinstance(o, BaseException))
            if errors:
                span.annotate(errors=errors)
        return outcomes
