"""Finding/report model for :mod:`repro.analysis`.

A lint run produces a :class:`Report`: an ordered list of :class:`Finding`
records plus scan statistics.  Findings render in the conventional
``path:line:col: RULE severity: message`` form so editors and CI logs can
link straight to the offending line.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Severity", "Finding", "Report"]


class Severity(enum.Enum):
    """How bad a finding is; errors fail the gate, warnings do not."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str = ""

    @property
    def sort_key(self) -> Tuple[str, int, int, str, str]:
        # message is the final tie-break so two findings of one rule at one
        # location (e.g. two stale __all__ names) order deterministically
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def render(self, show_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.severity}: {self.message}"
        if show_hint and self.fix_hint:
            text += f"\n    hint: {self.fix_hint}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }


@dataclass
class Report:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0
    n_rules: int = 0

    def __post_init__(self) -> None:
        self.findings = sorted(self.findings, key=lambda f: f.sort_key)

    @property
    def ok(self) -> bool:
        """True when no *error*-severity findings exist."""
        return not any(f.severity is Severity.ERROR for f in self.findings)

    @property
    def n_errors(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.ERROR)

    @property
    def n_warnings(self) -> int:
        return sum(1 for f in self.findings if f.severity is Severity.WARNING)

    def by_rule(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def summary(self) -> str:
        if not self.findings:
            return f"reprolint: clean ({self.n_files} files, {self.n_rules} rules)"
        return (
            f"reprolint: {self.n_errors} error(s), {self.n_warnings} warning(s) "
            f"in {self.n_files} files"
        )

    def to_text(self, show_hints: bool = True) -> str:
        lines = [f.render(show_hint=show_hints) for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        payload = {
            "ok": self.ok,
            "n_files": self.n_files,
            "n_rules": self.n_rules,
            "n_errors": self.n_errors,
            "n_warnings": self.n_warnings,
            "findings": [f.to_dict() for f in self.findings],
        }
        return json.dumps(payload, indent=indent)
