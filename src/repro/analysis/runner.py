"""Command-line front end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes follow linter convention: 0 clean, 1 findings, 2 bad usage.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import LintConfig, LintEngine, all_rules

__all__ = ["main", "build_parser", "default_target"]


def default_target() -> str:
    """The installed ``repro`` package directory (lint ourselves by default)."""
    import repro

    return str(Path(repro.__file__).parent)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: static checks for the CBVR contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from text output"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _parse_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [item.strip() for item in raw.split(",") if item.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.rule_id:>4}  {cls.title:<28} {cls.__doc__.splitlines()[0]}")
        return 0

    select = _parse_rule_list(args.select)
    ignore = _parse_rule_list(args.ignore)
    known = {cls.rule_id for cls in all_rules()}
    for rule_id in (select or []) + (ignore or []):
        if rule_id not in known:
            print(f"error: unknown rule id {rule_id!r}", file=sys.stderr)
            return 2

    config = LintConfig().with_rules(select=select, ignore=ignore or ())
    paths = args.paths or [default_target()]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such path {path!r}", file=sys.stderr)
            return 2

    report = LintEngine(config).lint_paths(paths)
    if args.fmt == "json":
        print(report.to_json())
    else:
        print(report.to_text(show_hints=not args.no_hints))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
