"""Command-line front end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes follow linter convention: 0 clean, 1 findings (or, under
``--diff``, pending autofixes), 2 bad usage.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import Baseline, partition_findings
from repro.analysis.engine import LintConfig, LintEngine, all_rules
from repro.analysis.findings import Report
from repro.analysis.fixes import FIXABLE_RULES, fix_module
from repro.analysis.sarif import report_to_sarif

__all__ = ["main", "build_parser", "default_target"]


def default_target() -> str:
    """The installed ``repro`` package directory (lint ourselves by default)."""
    import repro

    return str(Path(repro.__file__).parent)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: static checks for the CBVR contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="fmt",
        help="output format",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE; only new findings gate",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=f"apply mechanical fixes ({', '.join(FIXABLE_RULES)}) in place",
    )
    parser.add_argument(
        "--diff",
        action="store_true",
        help="preview fixes as a unified diff without writing; exit 1 if any",
    )
    parser.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from text output"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _parse_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [item.strip() for item in raw.split(",") if item.strip()]


def _emit(text: str, output: Optional[str]) -> None:
    if output is None:
        print(text)
    else:
        Path(output).write_text(text + "\n", encoding="utf-8")


def _run_fixer(engine: LintEngine, paths: List[str], preview: bool) -> int:
    """Apply (or preview) autofixes; return the exit code."""
    changed = 0
    for path in engine.collect_files(paths):
        text = path.read_text(encoding="utf-8")
        try:
            module = engine.load_source(text, path=str(path))
        except SyntaxError:
            continue  # the lint pass reports parse failures
        result = fix_module(module, engine.config)
        if not result.changed:
            continue
        changed += 1
        if preview:
            diff = difflib.unified_diff(
                text.splitlines(keepends=True),
                result.source.splitlines(keepends=True),
                fromfile=str(path),
                tofile=f"{path} (fixed)",
            )
            sys.stdout.write("".join(diff))
        else:
            path.write_text(result.source, encoding="utf-8")
            for line in result.applied:
                print(f"fixed: {line}")
    if preview:
        if changed:
            print(f"reprolint --diff: fixes pending in {changed} file(s)")
            return 1
        print("reprolint --diff: no fixes pending")
        return 0
    print(f"reprolint --fix: rewrote {changed} file(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            summary = (cls.__doc__ or cls.title).strip().splitlines()[0]
            print(f"{cls.rule_id:>4}  {cls.title:<28} {summary}")
        return 0

    select = _parse_rule_list(args.select)
    ignore = _parse_rule_list(args.ignore)
    known = {cls.rule_id for cls in all_rules()}
    for rule_id in (select or []) + (ignore or []):
        if rule_id not in known:
            print(f"error: unknown rule id {rule_id!r}", file=sys.stderr)
            return 2
    if args.write_baseline and args.baseline is None:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    config = LintConfig().with_rules(select=select, ignore=ignore or ())
    paths = args.paths or [default_target()]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such path {path!r}", file=sys.stderr)
            return 2

    engine = LintEngine(config)

    if args.fix or args.diff:
        code = _run_fixer(engine, paths, preview=args.diff)
        if args.diff or code != 0:
            return code
        # fall through: report what remains after fixing

    report = engine.lint_paths(paths)

    if args.write_baseline:
        Baseline.from_report(report).dump(args.baseline)
        print(
            f"reprolint: wrote baseline with {len(report.findings)} finding(s) "
            f"to {args.baseline}"
        )
        return 0

    suppressed = 0
    if args.baseline is not None:
        if not Path(args.baseline).exists():
            print(f"error: no such baseline {args.baseline!r}", file=sys.stderr)
            return 2
        baseline = Baseline.load(args.baseline)
        new, suppressed, stale = partition_findings(report, baseline)
        report = Report(findings=new, n_files=report.n_files, n_rules=report.n_rules)
        for rule, fpath, message in stale:
            print(
                f"warning: stale baseline entry {rule} {fpath}: {message!r} "
                "no longer matches; ratchet the baseline down",
                file=sys.stderr,
            )

    if args.fmt == "json":
        _emit(report.to_json(), args.output)
    elif args.fmt == "sarif":
        _emit(report_to_sarif(report, root=Path.cwd()), args.output)
    else:
        text = report.to_text(show_hints=not args.no_hints)
        if suppressed:
            text += f"\nreprolint: {suppressed} baselined finding(s) suppressed"
        _emit(text, args.output)
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
