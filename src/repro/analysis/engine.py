"""Rule engine for ``reprolint``.

The engine parses every target file once into an :class:`ModuleInfo`
(source, AST, derived module name), then runs two kinds of rules over the
result:

- :class:`Rule` -- checked module-by-module (most rules);
- :class:`ProjectRule` -- checked once against *all* modules, for
  cross-file contracts such as extractor-registry uniqueness.

Suppression works like other linters: ``# reprolint: disable=R4`` on the
offending line silences that rule for the line, and a comment line
``# reprolint: disable-file=R5`` anywhere in the file silences the rule for
the whole file.  ``disable=all`` is accepted in both forms.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type, Union

from repro.analysis.findings import Finding, Report, Severity

__all__ = [
    "ModuleInfo",
    "LintConfig",
    "Rule",
    "ProjectRule",
    "ModelRule",
    "LintEngine",
    "register_rule",
    "all_rules",
    "module_name_for",
    "lint_paths",
    "lint_source",
]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable(?P<file>-file)?\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, ready for rule visitors."""

    path: str
    module: str  # dotted module name, e.g. "repro.features.glcm"
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    @property
    def package(self) -> str:
        """Parent package ("repro.features" for "repro.features.glcm")."""
        return self.module.rsplit(".", 1)[0] if "." in self.module else ""

    def in_package(self, prefix: str) -> bool:
        return self.module == prefix or self.module.startswith(prefix + ".")


@dataclass(frozen=True)
class LintConfig:
    """Rule selection and project-shape knobs.

    The defaults encode this repository's layout; fixture tests override
    them freely, which is also how a future second project would adapt the
    linter.
    """

    select: Optional[frozenset] = None  # None = all registered rules
    ignore: frozenset = frozenset()
    #: modules that must stay free of IO and of db/web/core imports
    pure_packages: Tuple[str, ...] = ("repro.imaging", "repro.similarity")
    #: modules allowed to do file IO despite living in a pure package
    io_allowlist: frozenset = frozenset({"repro.imaging.image"})
    #: the embedded-database package (R4 / R9 scope)
    db_package: str = "repro.db"
    #: where extractors live (R1/R2/R10 scope)
    features_package: str = "repro.features"
    #: names of the approved SQL-building helpers (R4)
    sql_builders: frozenset = frozenset({"build_select", "build_insert", "build_delete"})
    #: modules whose stdout is their user contract (R12 allows print here)
    cli_modules: Tuple[str, ...] = ("repro.cli", "repro.analysis.runner")
    #: the policy layer allowed to block in time.sleep (R13 scope)
    sleep_allowlist: Tuple[str, ...] = ("repro.resilience",)
    #: the architecture DAG, bottom layer first; a module may only import
    #: modules in strictly lower layers (or its own package).  Packages
    #: not named here are unconstrained (R14 scope)
    layers: Tuple[Tuple[str, ...], ...] = (
        ("repro.obs", "repro.imaging", "repro.similarity", "repro.snapshot"),
        ("repro.video", "repro.resilience"),
        ("repro.features", "repro.db", "repro.runtime"),
        ("repro.indexing",),
        ("repro.core",),
        ("repro.sharding",),
        ("repro.web", "repro.eval", "repro.analysis"),
        ("repro.serving",),
        ("repro.cli",),
        ("repro.__main__",),
    )
    #: packages whose public functions run on server threads (R15 roots)
    threaded_packages: Tuple[str, ...] = ("repro.web",)
    #: modules whose public entry points must reach instrumentation (R17)
    obs_entry_modules: Tuple[str, ...] = (
        "repro.core.system",
        "repro.web",
        "repro.sharding.coordinator",
        "repro.sharding.worker",
    )
    #: modules sanctioned to hold resources outside ``with`` (R18)
    resource_allowlist: frozenset = frozenset({"repro.imaging.image"})

    def wants(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select

    def with_rules(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> "LintConfig":
        return replace(
            self,
            select=frozenset(select) if select is not None else self.select,
            ignore=frozenset(ignore) if ignore is not None else self.ignore,
        )


class Rule:
    """Base class: one named, per-module check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings.  ``scope`` restricts the rule to module-name
    prefixes (empty tuple = every module).
    """

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    fix_hint: str = ""

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        return True

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: Union[ast.AST, int],
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        else:
            line, col = int(node), 1
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=line,
            col=col,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


class ProjectRule(Rule):
    """A rule that needs the whole module set (cross-file contracts)."""

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        return ()

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterable[Finding]:
        raise NotImplementedError


class ModelRule(ProjectRule):
    """A rule over the :class:`~repro.analysis.project.ProjectModel`.

    The engine builds the model once per run (module graph, symbol
    tables, call graph) and shares it across every model rule, so adding
    a rule costs one traversal, not one re-parse.
    """

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterable[Finding]:
        from repro.analysis.project import ProjectModel

        return self.check_model(ProjectModel(modules), config)

    def check_model(self, model, config: LintConfig) -> Iterable[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        path: str,
        node: Union[ast.AST, int],
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """A finding in an arbitrary module (model rules roam the project)."""
        if isinstance(node, ast.AST):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        else:
            line, col = int(node), 1
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalogue."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    if cls.rule_id in _RULES and _RULES[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _RULES[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    import repro.analysis.rules  # noqa: F401  (registers the built-in rules)

    return [_RULES[rid] for rid in sorted(_RULES)]


def module_name_for(path: Union[str, Path]) -> str:
    """Dotted module name, derived by walking up through ``__init__.py`` dirs."""
    p = Path(path)
    parts: List[str] = [] if p.stem == "__init__" else [p.stem]
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


@dataclass
class _Suppressions:
    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def hides(self, finding: Finding) -> bool:
        for pool in (self.file_level, self.by_line.get(finding.line, ())):
            if finding.rule_id in pool or "all" in pool:
                return True
        return False


def _scan_pragmas(lines: Sequence[str], tree: Optional[ast.Module] = None) -> _Suppressions:
    sup = _Suppressions()
    line_pragmas: List[Tuple[int, Set[str]]] = []
    for lineno, line in enumerate(lines, start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
        if m.group("file"):
            sup.file_level |= rules
        else:
            sup.by_line.setdefault(lineno, set()).update(rules)
            line_pragmas.append((lineno, rules))
    if tree is not None and line_pragmas:
        # a pragma on *any* physical line of a multi-line simple statement
        # covers the whole statement (findings anchor to its first line)
        spans = [
            (node.lineno, node.end_lineno)
            for node in ast.walk(tree)
            if isinstance(node, ast.stmt)
            and not hasattr(node, "body")  # simple statements only
            and node.end_lineno is not None
            and node.end_lineno > node.lineno
        ]
        for lineno, rules in line_pragmas:
            for start, end in spans:
                if start <= lineno <= end:
                    for covered in range(start, end + 1):
                        sup.by_line.setdefault(covered, set()).update(rules)
    return sup


class LintEngine:
    """Parses files, runs the rule set, and assembles a :class:`Report`."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.rules: List[Rule] = [
            cls() for cls in all_rules() if self.config.wants(cls.rule_id)
        ]

    # -- module loading -------------------------------------------------------

    def load_source(
        self, source: str, path: str = "<string>", module: Optional[str] = None
    ) -> ModuleInfo:
        tree = ast.parse(source, filename=path)
        return ModuleInfo(
            path=path,
            module=module if module is not None else module_name_for(path),
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )

    def collect_files(self, paths: Sequence[Union[str, Path]]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        seen: Set[Path] = set()
        unique = []
        for f in files:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                unique.append(f)
        return unique

    # -- running --------------------------------------------------------------

    def lint_modules(self, modules: Sequence[ModuleInfo]) -> Report:
        findings: List[Finding] = []
        model = None
        for rule in self.rules:
            if isinstance(rule, ModelRule):
                if model is None:
                    from repro.analysis.project import ProjectModel

                    model = ProjectModel(modules)
                findings.extend(rule.check_model(model, self.config))
            elif isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(modules, self.config))
            else:
                for module in modules:
                    if rule.applies_to(module, self.config):
                        findings.extend(rule.check(module, self.config))
        by_path = {m.path: _scan_pragmas(m.lines, m.tree) for m in modules}
        kept = [
            f
            for f in findings
            if f.path not in by_path or not by_path[f.path].hides(f)
        ]
        return Report(findings=kept, n_files=len(modules), n_rules=len(self.rules))

    def lint_paths(self, paths: Sequence[Union[str, Path]]) -> Report:
        modules: List[ModuleInfo] = []
        parse_failures: List[Finding] = []
        for path in self.collect_files(paths):
            text = path.read_text(encoding="utf-8")
            try:
                modules.append(self.load_source(text, path=str(path)))
            except SyntaxError as exc:
                parse_failures.append(
                    Finding(
                        rule_id="PARSE",
                        severity=Severity.ERROR,
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        report = self.lint_modules(modules)
        if parse_failures:
            report = Report(
                findings=list(report.findings) + parse_failures,
                n_files=report.n_files + len(parse_failures),
                n_rules=report.n_rules,
            )
        return report


def lint_paths(
    paths: Sequence[Union[str, Path]], config: Optional[LintConfig] = None
) -> Report:
    """Lint files/directories with the full (or configured) rule set."""
    return LintEngine(config).lint_paths(paths)


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "fixture",
    config: Optional[LintConfig] = None,
) -> Report:
    """Lint one in-memory module (the fixture-test entry point)."""
    engine = LintEngine(config)
    return engine.lint_modules([engine.load_source(source, path=path, module=module)])
