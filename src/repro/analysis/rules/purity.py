"""Rule R5: the imaging and similarity layers stay pure.

``repro.imaging`` and ``repro.similarity`` are the numeric substrate every
other layer builds on: extractors, the DP sequence matcher, the evaluation
harness and the web facade all assume calling them has no side effects and
pulls in no heavyweight dependencies.  A stray ``open()`` or an import of
the DB layer from inside a filter turns a pure function into an IO hazard
and an import cycle.  ``repro/imaging/image.py`` is the one sanctioned IO
boundary (it reads and writes image files).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["PurityRule"]

#: stdlib/third-party modules that imply file, network or process IO
_IO_MODULES = frozenset(
    {
        "os",
        "io",
        "shutil",
        "pathlib",
        "tempfile",
        "socket",
        "ssl",
        "http",
        "urllib",
        "ftplib",
        "smtplib",
        "requests",
        "subprocess",
    }
)

#: repro layers the pure packages must never depend on
_FORBIDDEN_LAYERS = ("repro.db", "repro.web", "repro.core", "repro.eval")


@register_rule
class PurityRule(Rule):
    """R5: no IO and no db/web/core imports in imaging/similarity."""

    rule_id = "R5"
    title = "pure-layers"
    fix_hint = (
        "keep imaging/similarity free of IO and upper-layer imports; file "
        "IO belongs in the repro.imaging.image boundary module"
    )

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        return any(module.in_package(pkg) for pkg in config.pure_packages)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        allowlisted = module.module in config.io_allowlist
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node, allowlisted)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    not allowlisted
                    and isinstance(func, ast.Name)
                    and func.id == "open"
                ):
                    yield self.finding(
                        module,
                        node,
                        f"pure module {module.module} calls open(); file IO "
                        "is reserved for the imaging.image boundary",
                    )

    def _check_import(self, module, node, allowlisted: bool):
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        else:
            targets = [node.module] if node.module else []
        for target in targets:
            root = target.split(".")[0]
            for layer in _FORBIDDEN_LAYERS:
                if target == layer or target.startswith(layer + "."):
                    yield self.finding(
                        module,
                        node,
                        f"pure module {module.module} imports {target}; "
                        "imaging/similarity must not depend on upper layers",
                    )
            if root in _IO_MODULES and not allowlisted:
                yield self.finding(
                    module,
                    node,
                    f"pure module {module.module} imports IO module "
                    f"{target!r}",
                )
