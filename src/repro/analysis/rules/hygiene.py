"""Rules R6 and R7: exception and default-argument hygiene.

Both are classic Python foot-guns that have bitten retrieval quality in
this codebase's lineage: a swallowed exception hides a failing extractor
(the frame silently ingests with missing features), and a mutable default
shares state between every call of a hot-path function.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule
from repro.analysis.rules.util import dotted_name

__all__ = ["ExceptionHygieneRule", "MutableDefaultRule"]


def _is_trivial_body(body: List[ast.stmt]) -> bool:
    """Only ``pass`` / ``...`` statements: the handler swallows silently."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    return any(
        dotted_name(t).rsplit(".", 1)[-1] in ("Exception", "BaseException")
        for t in types
    )


@register_rule
class ExceptionHygieneRule(Rule):
    """R6: no bare ``except:`` and no silently-swallowed Exception."""

    rule_id = "R6"
    title = "exception-hygiene"
    fix_hint = (
        "catch the narrowest exception type that can actually occur, and "
        "handle or re-raise it -- never pass"
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exception type",
                )
            elif _catches_everything(node) and _is_trivial_body(node.body):
                yield self.finding(
                    module,
                    node,
                    "'except Exception: pass' swallows every failure silently",
                )


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


@register_rule
class MutableDefaultRule(Rule):
    """R7: no mutable default arguments."""

    rule_id = "R7"
    title = "no-mutable-defaults"
    fix_hint = "default to None (or a tuple/frozenset) and construct inside the body"

    def _is_mutable(self, default: ast.expr) -> bool:
        if isinstance(default, _MUTABLE_LITERALS):
            return True
        if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
            return default.func.id in _MUTABLE_CALLS
        return False

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"{label}() has a mutable default argument; the object "
                        "is shared across every call",
                    )
