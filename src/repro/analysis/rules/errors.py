"""Rule R9: the DB layer raises only its own error hierarchy.

``repro.db.errors.DatabaseError`` is the contract boundary: ``cli.py``, the
web facade and the core system all catch it to turn engine failures into
user-facing messages.  A ``ValueError`` escaping from deep inside the
engine bypasses every one of those handlers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule
from repro.analysis.rules.util import dotted_name

__all__ = ["DbErrorHierarchyRule"]

#: builtin exceptions the db layer must wrap instead of raising directly.
#: NotImplementedError/AssertionError stay allowed: they flag programmer
#: errors, not runtime database failures.
_BANNED_BUILTINS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "AttributeError",
        "RuntimeError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "StopIteration",
    }
)


@register_rule
class DbErrorHierarchyRule(Rule):
    """R9: raises inside repro.db derive from repro.db.errors."""

    rule_id = "R9"
    title = "db-error-hierarchy"
    fix_hint = (
        "raise a DatabaseError subclass from repro.db.errors (add one if "
        "no existing class fits)"
    )

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        return module.in_package(config.db_package)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            if name in _BANNED_BUILTINS:
                yield self.finding(
                    module,
                    node,
                    f"db layer raises builtin {name}; callers only catch the "
                    "repro.db.errors hierarchy",
                )
