"""Rule R4: SQL reaches ``execute`` only as literals or built statements.

String-interpolated SQL is how identifier typos and (in a networked
deployment) injection bugs enter a system.  The only approved ways to get a
statement into ``Database.execute``/``executemany`` are a plain string
literal with ``?`` placeholders, a named constant, or the parameterized
builder helpers in ``repro/db/sql.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule
from repro.analysis.rules.util import dotted_name

__all__ = ["SqlConstructionRule", "classify_dynamic_sql", "EXECUTE_METHODS"]

EXECUTE_METHODS = ("execute", "executemany", "executescript")
_EXECUTE_METHODS = EXECUTE_METHODS


def classify_dynamic_sql(arg: ast.expr, config: LintConfig) -> Optional[str]:
    """Reason the expression is a dynamically-assembled SQL string.

    Shared by R4 (literal checks at the execute site) and R16 (the same
    check applied to every definition that *reaches* the execute site).
    """
    if isinstance(arg, ast.JoinedStr):
        return "an f-string"
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, (ast.Add, ast.Mod)):
        op = "+" if isinstance(arg.op, ast.Add) else "%"
        return f"built with the {op!r} operator"
    if isinstance(arg, ast.Call):
        name = dotted_name(arg.func)
        tail = name.rsplit(".", 1)[-1]
        if tail == "format":
            return "a .format() call"
        if tail == "join":
            return "a str.join() call"
        if tail in config.sql_builders:
            return None  # approved builder
        return None  # unknown helper call: give it the benefit of the doubt
    return None


@register_rule
class SqlConstructionRule(Rule):
    """R4: no f-string / ``%`` / ``+`` / ``.format`` SQL at execute sites."""

    rule_id = "R4"
    title = "parameterized-sql"
    fix_hint = (
        "use a string literal with ? placeholders, or the build_select/"
        "build_insert/build_delete helpers from repro.db.sql"
    )

    def _classify(self, arg: ast.expr, config: LintConfig) -> Optional[str]:
        return classify_dynamic_sql(arg, config)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _EXECUTE_METHODS):
                continue
            sql_arg = self._first_argument(node)
            if sql_arg is None:
                continue
            reason = self._classify(sql_arg, config)
            if reason:
                yield self.finding(
                    module,
                    sql_arg,
                    f"SQL passed to .{func.attr}() is {reason}; statements "
                    "must be literals or repro.db.sql builder output",
                )

    @staticmethod
    def _first_argument(node: ast.Call) -> Optional[ast.expr]:
        if node.args:
            first = node.args[0]
            return None if isinstance(first, ast.Starred) else first
        return None
