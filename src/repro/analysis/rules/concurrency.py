"""Rule R15: module-level state touched from concurrent contexts is guarded.

Two execution contexts run project code concurrently today, and both grow
in the sharded/async roadmap: the ``ThreadingHTTPServer`` web front end
(one thread per request) and callables shipped through
``runtime.WorkerPool`` (forked workers now, a shard fleet next).  A
module-level dict/list/set mutated on those paths without a lock is a
data race on the threaded path and silently-diverging per-process state
on the forked path.

The rule uses the project call graph to find every function reachable
from (a) the web package and (b) any callable passed to a pool ``map``,
then flags mutations of module-level mutable bindings inside them unless
the mutation sits under ``with <module-level lock>:``.  ``dict.setdefault``
is exempt -- it is the sanctioned GIL-atomic publish idiom.

Separately (and everywhere, not just on concurrent paths), a
``ContextVar.set()`` must keep its token and ``reset`` it: a discarded
token leaks request-scoped state onto whatever runs next on the thread,
which is precisely the bug class the shard-worker fleet cannot debug.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, LintConfig, ModelRule, register_rule
from repro.analysis.project import (
    KIND_CONTEXTVAR,
    KIND_LOCK,
    KIND_MUTABLE,
    FunctionInfo,
    ProjectModel,
    dotted,
)

__all__ = ["ConcurrencySafetyRule"]

#: container methods that mutate in place (setdefault is GIL-atomic: exempt)
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "add", "discard", "appendleft", "extendleft",
    }
)


@register_rule
class ConcurrencySafetyRule(ModelRule):
    """R15: concurrent paths lock shared module state; tokens get reset."""

    rule_id = "R15"
    title = "fork-thread-safety"
    fix_hint = (
        "guard the mutation with a module-level threading.Lock (with _LOCK:), "
        "use dict.setdefault for publish-once caches, and keep/reset every "
        "ContextVar token (token = VAR.set(...); ...; VAR.reset(token))"
    )

    # -- entry -----------------------------------------------------------------

    def check_model(self, model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
        concurrent, why = self._concurrent_functions(model, config)
        for qual in sorted(concurrent):
            info = model.functions[qual]
            sym = model.symbols.get(info.module)
            if sym is None:
                continue
            mutables = {n for n, k in sym.kinds.items() if k == KIND_MUTABLE}
            locks = {n for n, k in sym.kinds.items() if k == KIND_LOCK}
            if not mutables:
                continue
            module = model.modules[info.module]
            for node, name, what in self._unguarded_mutations(info.node, mutables, locks):
                yield self.finding_at(
                    module.path,
                    node,
                    f"{info.name}() {what} module-level mutable {name!r} "
                    f"without a lock, but runs {why[qual]}; concurrent "
                    "mutation of shared state races",
                )
        yield from self._check_contextvars(model)

    # -- which functions run concurrently -------------------------------------

    def _concurrent_functions(
        self, model: ProjectModel, config: LintConfig
    ) -> Tuple[Set[str], Dict[str, str]]:
        web_roots = [
            qual
            for qual, info in model.functions.items()
            if any(
                info.module == p or info.module.startswith(p + ".")
                for p in config.threaded_packages
            )
        ]
        pool_roots: List[str] = []
        for qual, info in model.functions.items():
            sym = model.symbols.get(info.module)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                target = dotted(node.func)
                tail = target.rsplit(".", 1)[-1]
                is_pool_ship = (
                    tail == "parallel_map"
                    or (tail == "map" and isinstance(node.func, ast.Attribute))
                )
                if not is_pool_ship:
                    continue
                shipped = node.args[0]
                shipped_name = dotted(shipped)
                if shipped_name:
                    pool_roots.extend(
                        model.resolve_call(info, shipped_name)
                    )
        via_web = model.reachable_from(web_roots)
        via_pool = model.reachable_from(pool_roots)
        why: Dict[str, str] = {}
        for qual in via_pool:
            why[qual] = "inside WorkerPool workers"
        for qual in via_web:
            # web wins the message: the threaded path is the racier one
            why[qual] = (
                "on web handler threads and in WorkerPool workers"
                if qual in via_pool
                else "on web handler threads"
            )
        return via_web | via_pool, why

    # -- mutation scan ---------------------------------------------------------

    def _unguarded_mutations(
        self, func: ast.AST, mutables: Set[str], locks: Set[str]
    ) -> List[Tuple[ast.AST, str, str]]:
        out: List[Tuple[ast.AST, str, str]] = []
        declared_global: Set[str] = {
            name
            for node in ast.walk(func)
            if isinstance(node, ast.Global)
            for name in node.names
        }

        def is_lock_guard(stmt: ast.With) -> bool:
            for item in stmt.items:
                expr = item.context_expr
                name = dotted(expr)
                if name.rsplit(".", 1)[-1] in locks or name in locks:
                    return True
            return False

        def local_shadow(name: str) -> bool:
            # a plain local assignment shadows the module binding
            if name in declared_global:
                return False
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        if isinstance(t, ast.Name) and t.id == name:
                            return True
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    args = node.args
                    all_args = (
                        args.posonlyargs + args.args + args.kwonlyargs
                        + ([args.vararg] if args.vararg else [])
                        + ([args.kwarg] if args.kwarg else [])
                    )
                    if any(a.arg == name for a in all_args):
                        return True
            return False

        def scan(stmts: List[ast.stmt], locked: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    scan(stmt.body, locked or is_lock_guard(stmt))
                    continue
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs are their own call-graph nodes
                if not locked:
                    for node, name, what in self._mutations_in(stmt, mutables, declared_global):
                        if not local_shadow(name):
                            out.append((node, name, what))
                for attr in ("body", "orelse", "finalbody"):
                    scan(list(getattr(stmt, attr, []) or []), locked)
                for handler in getattr(stmt, "handlers", []) or []:
                    scan(handler.body, locked)

        body = getattr(func, "body", [])
        scan(list(body), locked=False)
        return out

    def _mutations_in(
        self, stmt: ast.stmt, mutables: Set[str], declared_global: Set[str]
    ) -> Iterable[Tuple[ast.AST, str, str]]:
        # only look at this statement's own expressions, not nested blocks
        # (nested blocks are scanned by the caller with their lock state)
        header: List[ast.AST] = []
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            header = [stmt]
        elif isinstance(stmt, ast.Expr):
            header = [stmt.value]
        elif isinstance(stmt, ast.Delete):
            header = [stmt]
        elif isinstance(stmt, (ast.If, ast.While)):
            header = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            header = [stmt.iter]
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            header = [v for v in (getattr(stmt, "value", None), getattr(stmt, "exc", None)) if v]
        for root in header:
            for node in ast.walk(root):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        name = self._store_root(t, mutables)
                        if name:
                            yield node, name, "writes into"
                        if isinstance(t, ast.Name) and t.id in mutables and t.id in declared_global:
                            yield node, t.id, "rebinds (global)"
                elif isinstance(node, ast.AugAssign):
                    name = self._store_root(node.target, mutables)
                    if name:
                        yield node, name, "writes into"
                    elif (
                        isinstance(node.target, ast.Name)
                        and node.target.id in mutables
                    ):
                        yield node, node.target.id, "augments"
                elif isinstance(node, ast.Delete):
                    for t in node.targets:
                        name = self._store_root(t, mutables)
                        if name:
                            yield node, name, "deletes from"
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in mutables
                    ):
                        yield node, func.value.id, f"calls .{func.attr}() on"

    @staticmethod
    def _store_root(target: ast.expr, mutables: Set[str]) -> Optional[str]:
        """Name N for stores of the form ``N[...]`` (subscript mutation)."""
        if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            if target.value.id in mutables:
                return target.value.id
        return None

    # -- ContextVar token hygiene ---------------------------------------------

    def _check_contextvars(self, model: ProjectModel) -> Iterable[Finding]:
        for mod_name in sorted(model.symbols):
            sym = model.symbols[mod_name]
            cvars = {n for n, k in sym.kinds.items() if k == KIND_CONTEXTVAR}
            if not cvars:
                continue
            module = model.modules[mod_name]
            infos = [f for f in model.functions.values() if f.module == mod_name]
            for info in sorted(infos, key=lambda f: f.lineno):
                yield from self._check_tokens(model, module.path, info, cvars)

    def _check_tokens(
        self, model: ProjectModel, path: str, info: FunctionInfo, cvars: Set[str]
    ) -> Iterable[Finding]:
        func = info.node
        has_local_reset: Dict[str, bool] = {}
        class_resets: Set[str] = set()
        if info.cls is not None:
            # any method of the class may carry the reset (enter/exit pairs)
            for other in model.functions.values():
                if other.module == info.module and other.cls == info.cls:
                    for node in ast.walk(other.node):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "reset"
                            and isinstance(node.func.value, ast.Name)
                        ):
                            class_resets.add(node.func.value.id)
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "reset"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in cvars
            ):
                has_local_reset[node.func.value.id] = True

        for stmt in ast.walk(func):
            call = None
            assigned_to_attr = False
            if isinstance(stmt, ast.Expr) and self._is_cvar_set(stmt.value, cvars):
                call = stmt.value
            elif isinstance(stmt, ast.Assign) and self._is_cvar_set(stmt.value, cvars):
                call = stmt.value
                assigned_to_attr = any(
                    isinstance(t, ast.Attribute) for t in stmt.targets
                )
            if call is None:
                continue
            var = call.func.value.id  # type: ignore[union-attr]
            if isinstance(stmt, ast.Expr):
                yield self.finding_at(
                    path,
                    stmt,
                    f"{info.name}() discards the token from {var}.set(); the "
                    "previous value can never be restored on this thread",
                )
            elif assigned_to_attr:
                if var not in class_resets:
                    yield self.finding_at(
                        path,
                        stmt,
                        f"{info.name}() stores {var}.set()'s token on an "
                        f"attribute but no method of the class calls "
                        f"{var}.reset(); the context leaks across requests",
                    )
            else:
                if not has_local_reset.get(var):
                    yield self.finding_at(
                        path,
                        stmt,
                        f"{info.name}() never calls {var}.reset() after "
                        f"{var}.set(); wrap the scope in try/finally and "
                        "reset the token",
                    )

    @staticmethod
    def _is_cvar_set(expr: ast.expr, cvars: Set[str]) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "set"
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id in cvars
        )
