"""Rule R8: every public module declares an importable ``__all__``.

The repo's convention is that a module's ``__all__`` *is* its API surface
-- docs, the web facade and the re-exporting ``__init__`` files all rely on
it.  A missing ``__all__`` makes the surface implicit; a stale one (naming
something that no longer exists) breaks ``from module import *`` and any
tooling that trusts it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["ExportsRule"]


def _find_all_assign(tree: ast.Module) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


def _literal_names(value: ast.expr) -> Optional[List[str]]:
    """Exported names if ``__all__`` is a literal list/tuple of strings."""
    if not isinstance(value, (ast.List, ast.Tuple)):
        return None
    names = []
    for elt in value.elts:
        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
            names.append(elt.value)
        else:
            return None
    return names


def _bound_names(tree: ast.Module) -> Optional[Set[str]]:
    """Names bound at module scope; None when not statically derivable."""
    bound: Set[str] = set()

    def visit_block(stmts):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    collect_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                collect_target(stmt.target)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    if alias.name == "*":
                        return False  # star import: give up
                    bound.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                for block in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                    getattr(stmt, "finalbody", []),
                ):
                    if visit_block(block) is False:
                        return False
                for handler in getattr(stmt, "handlers", []):
                    if visit_block(handler.body) is False:
                        return False
        return True

    def collect_target(target):
        if isinstance(target, ast.Name):
            bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)

    if visit_block(tree.body) is False:
        return None
    return bound


@register_rule
class ExportsRule(Rule):
    """R8: public modules declare ``__all__`` and every entry is bound."""

    rule_id = "R8"
    title = "explicit-exports"
    fix_hint = "declare __all__ as a literal list of names defined in the module"

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        stem = module.module.rsplit(".", 1)[-1]
        return not (stem.startswith("_") and stem != "__init__") and stem != "__main__"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        assign = _find_all_assign(module.tree)
        if assign is None:
            yield self.finding(
                module,
                1,
                f"module {module.module} has no __all__; its public surface "
                "is implicit",
            )
            return
        names = _literal_names(assign.value)
        if names is None:
            return  # computed __all__ (e.g. built from a registry): presence is enough
        bound = _bound_names(module.tree)
        if bound is None:
            return  # star imports: cannot verify statically
        if "__getattr__" in bound:
            return  # PEP 562 lazy module: names resolve dynamically
        for name in names:
            if name not in bound:
                yield self.finding(
                    module,
                    assign,
                    f"__all__ exports {name!r}, which is never defined in "
                    f"{module.module}",
                )
