"""Rule R17: public entry points are observable.

PR 4 built the metrics/tracing substrate and PR 5's resilience layer
leans on it; an entry point that never reaches a span or a metric is
invisible in exactly the incident where observability pays for itself.
R17 walks the call graph from every public function of the configured
entry packages (``LintConfig.obs_entry_modules`` -- the core facade and
the web layer) and reports the ones from which no span/metric call is
reachable.  Trivial accessors (a couple of statements, no loops) are
exempt: wrapping a one-line getter in a span is noise, not coverage.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintConfig, ModelRule, register_rule
from repro.analysis.project import FunctionInfo, ProjectModel

__all__ = ["ObsCoverageRule"]

#: dotted-call tails that constitute "touching observability"
_OBS_TAILS = frozenset(
    {
        "span", "start_span", "labels", "inc", "dec", "observe",
        "counter", "gauge", "histogram", "time_block",
    }
)

#: statements (after the docstring) below which a function is too small to trace
_TRIVIAL_STMTS = 2


@register_rule
class ObsCoverageRule(ModelRule):
    """R17: every non-trivial public entry point reaches a span or metric."""

    rule_id = "R17"
    title = "obs-coverage"
    fix_hint = (
        "open a span (with span(...):) or bump a metric in the entry point, "
        "or route it through an instrumented helper; see repro/obs"
    )

    def check_model(self, model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
        touches = {
            qual
            for qual, info in model.functions.items()
            if any(c.rsplit(".", 1)[-1] in _OBS_TAILS for c in info.calls)
        }
        for info in model.public_functions(config.obs_entry_modules):
            if self._is_trivial(info):
                continue
            closure = model.reachable_from([info.qualname])
            if closure & touches:
                continue
            where = f"{info.cls}.{info.name}" if info.cls else info.name
            yield self.finding_at(
                model.modules[info.module].path,
                info.node,
                f"public entry point {where}() in {info.module} never reaches "
                "a span or metric; an incident on this path leaves no trace",
            )

    @staticmethod
    def _is_trivial(info: FunctionInfo) -> bool:
        body = list(getattr(info.node, "body", []))
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ) and isinstance(body[0].value.value, str):
            body = body[1:]  # drop the docstring
        if len(body) > _TRIVIAL_STMTS:
            return False
        return not any(
            isinstance(n, (ast.For, ast.AsyncFor, ast.While))
            for stmt in body
            for n in ast.walk(stmt)
        )
