"""Rules R1-R3 and R10: the feature-extractor registry contracts.

The retrieval pipeline discovers extractors exclusively through the
``@register_extractor`` registry (``repro/features/base.py``); an extractor
that subclasses :class:`FeatureExtractor` but never registers, or registers
under a colliding ``name``/``tag``, silently drops a feature column from
every ingested video.  These rules make that failure mode a lint error.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.engine import (
    Finding,
    LintConfig,
    ModuleInfo,
    ProjectRule,
    Rule,
    register_rule,
)
from repro.analysis.rules.util import (
    base_names,
    calls_function,
    calls_super_method,
    class_defs,
    class_str_attr,
    decorator_names,
    is_abstract_class,
    references_attribute,
)

__all__ = [
    "ExtractorRegistrationRule",
    "RegistryUniquenessRule",
    "FeatureStringContractRule",
    "ExtractorModuleImportRule",
]

_BASE_CLASS = "FeatureExtractor"
_DECORATOR = "register_extractor"


def _is_extractor_subclass(cls: ast.ClassDef) -> bool:
    return _BASE_CLASS in base_names(cls)


def _registered_classes(module: ModuleInfo) -> List[ast.ClassDef]:
    return [
        cls for cls in class_defs(module.tree) if _DECORATOR in decorator_names(cls)
    ]


@register_rule
class ExtractorRegistrationRule(Rule):
    """R1: every concrete FeatureExtractor subclass registers a real name."""

    rule_id = "R1"
    title = "extractor-registered"
    fix_hint = (
        "decorate the class with @register_extractor and give it a "
        'non-empty class-level name = "..." string'
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for cls in class_defs(module.tree):
            if not _is_extractor_subclass(cls):
                continue
            if cls.name.startswith("_") or is_abstract_class(cls):
                continue
            registered = _DECORATOR in decorator_names(cls)
            name_value, name_line = class_str_attr(cls, "name")
            if not registered:
                yield self.finding(
                    module,
                    cls,
                    f"{cls.name} subclasses {_BASE_CLASS} but is never "
                    f"@{_DECORATOR}-ed; the retrieval pipeline will not see it",
                )
            if name_line is None or not name_value:
                yield self.finding(
                    module,
                    cls if name_line is None else name_line,
                    f"{cls.name} must declare a non-empty class-level "
                    "'name' string literal (the registry key)",
                )


@register_rule
class RegistryUniquenessRule(ProjectRule):
    """R2: registry ``name``/``tag`` values are unique across the project.

    A duplicate ``name`` raises at import time, but only if both modules
    are imported; a duplicate ``tag`` never raises and silently makes two
    different features indistinguishable in the VARCHAR2 string form.
    """

    rule_id = "R2"
    title = "registry-unique"
    fix_hint = "pick a unique registry name/tag for each extractor"

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterable[Finding]:
        seen_names: Dict[str, Tuple[str, str]] = {}
        seen_tags: Dict[str, Tuple[str, str]] = {}
        for module in modules:
            for cls in _registered_classes(module):
                name_value, _ = class_str_attr(cls, "name")
                tag_value, tag_line = class_str_attr(cls, "tag")
                if tag_line is None or not tag_value:
                    tag_value = name_value  # register_extractor defaults tag to name
                for value, seen, kind in (
                    (name_value, seen_names, "name"),
                    (tag_value, seen_tags, "tag"),
                ):
                    if not value:
                        continue
                    if value in seen:
                        other_cls, other_mod = seen[value]
                        yield self.finding(
                            module,
                            cls,
                            f"extractor {kind} {value!r} on {cls.name} collides "
                            f"with {other_cls} in {other_mod}",
                        )
                    else:
                        seen[value] = (cls.name, module.module)


@register_rule
class FeatureStringContractRule(Rule):
    """R3: to_string/from_string overrides keep the ``<tag> <n> ...`` header.

    The DB layer round-trips every feature through the paper's VARCHAR2
    string form; an override that drops the tag or the length header
    corrupts rows that only fail much later, at query time.  Overrides must
    delegate to the base implementation or visibly emit/parse the header.
    """

    rule_id = "R3"
    title = "feature-string-contract"
    fix_hint = (
        "delegate via super().to_string()/from_string(), or emit the tag "
        "and length header (to_string) / split and int-parse it (from_string)"
    )

    _FEATURE_BASES = ("FeatureVector", "FeatureExtractor")

    def _is_feature_class(self, cls: ast.ClassDef) -> bool:
        bases = base_names(cls)
        return (
            any(b in self._FEATURE_BASES for b in bases)
            or _DECORATOR in decorator_names(cls)
        )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for cls in class_defs(module.tree):
            if not self._is_feature_class(cls):
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "to_string":
                    if calls_super_method(stmt, "to_string"):
                        continue
                    if calls_function(stmt, "to_string"):
                        continue  # delegates to a FeatureVector's to_string
                    if references_attribute(stmt, "tag") and calls_function(stmt, "len"):
                        continue
                    yield self.finding(
                        module,
                        stmt,
                        f"{cls.name}.to_string does not emit the "
                        "'<tag> <n> <v1>...' header the DB layer round-trips",
                    )
                elif stmt.name == "from_string":
                    if calls_super_method(stmt, "from_string") or calls_function(
                        stmt, "from_string"
                    ):
                        continue
                    if calls_function(stmt, "split") and calls_function(stmt, "int"):
                        continue
                    yield self.finding(
                        module,
                        stmt,
                        f"{cls.name}.from_string does not parse the "
                        "'<tag> <n> <v1>...' header (split + int length check)",
                    )


@register_rule
class ExtractorModuleImportRule(ProjectRule):
    """R10: every extractor module is imported by the features package.

    ``@register_extractor`` only runs when its module is imported; an
    extractor file that ``repro/features/__init__.py`` forgets to import is
    registered in no process that imports the package normally -- the
    classic silently-missing-feature bug this linter exists to catch.
    """

    rule_id = "R10"
    title = "extractor-module-imported"
    fix_hint = "import the module from the features package __init__.py"

    def check_project(
        self, modules: Sequence[ModuleInfo], config: LintConfig
    ) -> Iterable[Finding]:
        package = config.features_package
        init = next((m for m in modules if m.module == package), None)
        if init is None:
            return  # features __init__ not part of this lint run
        imported = set()
        for node in ast.walk(init.tree):
            if isinstance(node, ast.Import):
                imported.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imported.add(node.module)
                imported.update(f"{node.module}.{a.name}" for a in node.names)
        for module in modules:
            if module is init or not module.in_package(package):
                continue
            for cls in _registered_classes(module):
                if module.module not in imported:
                    yield self.finding(
                        module,
                        cls,
                        f"{cls.name} registers itself in {module.module}, but "
                        f"{package}/__init__.py never imports that module, so "
                        "the registration never runs",
                    )
                    break  # one finding per module is enough
