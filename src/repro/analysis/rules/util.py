"""Shared AST helpers for the rule visitors."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "dotted_name",
    "decorator_names",
    "base_names",
    "class_defs",
    "class_str_attr",
    "is_abstract_class",
    "calls_super_method",
    "references_attribute",
    "calls_function",
]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains; "" for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted_name(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    if isinstance(node, ast.Call):
        return dotted_name(node.func)
    return ""


def decorator_names(cls: ast.ClassDef) -> List[str]:
    """Last component of every decorator ("register_extractor" etc.)."""
    names = []
    for dec in cls.decorator_list:
        name = dotted_name(dec)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def base_names(cls: ast.ClassDef) -> List[str]:
    """Last component of every base-class expression."""
    names = []
    for base in cls.bases:
        name = dotted_name(base)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Top-level (and conditionally-nested) class definitions."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def class_str_attr(cls: ast.ClassDef, attr: str) -> Tuple[Optional[str], Optional[int]]:
    """Value and line of a class-level ``attr = "literal"`` assignment.

    Returns ``(None, None)`` when the attribute is not assigned at class
    level, and ``("", line)``-style values for non-literal assignments so
    callers can distinguish "missing" from "not a string constant".
    """
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == attr:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value, stmt.lineno
                return None, stmt.lineno
    return None, None


def is_abstract_class(cls: ast.ClassDef) -> bool:
    """Heuristically abstract: ABC base/metaclass or any @abstractmethod."""
    for name in base_names(cls):
        if name in ("ABC", "ABCMeta"):
            return True
    for kw in cls.keywords:
        if kw.arg == "metaclass" and dotted_name(kw.value).endswith("ABCMeta"):
            return True
    for node in ast.walk(cls):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                if dotted_name(dec).rsplit(".", 1)[-1] in (
                    "abstractmethod",
                    "abstractproperty",
                ):
                    return True
    return False


def calls_super_method(func: ast.FunctionDef, method: str) -> bool:
    """True if the body contains ``super().<method>(...)``."""
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Call)
            and dotted_name(node.func.value.func) == "super"
        ):
            return True
    return False


def references_attribute(func: ast.AST, attr: str) -> bool:
    """True if the body reads ``<anything>.<attr>`` or the bare name."""
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr == attr:
            return True
        if isinstance(node, ast.Name) and node.id == attr:
            return True
    return False


def calls_function(func: ast.AST, name: str) -> bool:
    """True if the body calls ``name(...)`` or ``<expr>.name(...)``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = dotted_name(node.func).rsplit(".", 1)[-1]
            if target == name:
                return True
    return False
