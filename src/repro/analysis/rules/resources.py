"""Rule R18: file handles and connections have a visible owner.

A bare ``open()`` (or ``*.connect()``) whose handle is never closed is a
slow leak: invisible in tests, fatal in a long-running retrieval daemon
that ingests thousands of videos.  The healthy shapes are

- ``with open(p) as f:`` -- scope-bound;
- ``self._fh = open(p)`` plus a ``self._fh.close()`` somewhere in the
  same class -- lifetime-bound to the object (how ``db.storage`` runs
  its WAL file);
- ``fh = open(p)`` with a later ``fh.close()`` in the same scope, or
  ``return``/``yield`` of the handle (a factory: the caller owns it).

Everything else -- a handle passed inline into another call, assigned
and forgotten -- is flagged.  Modules in
``LintConfig.resource_allowlist`` are exempt wholesale (the imaging
codecs open-and-slurp in tight helpers where ``with`` is already the
idiom and short-lived probing handles are deliberate).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule
from repro.analysis.rules.util import dotted_name

__all__ = ["ResourceHygieneRule"]

_ACQUIRE_TAILS = frozenset({"connect"})


@register_rule
class ResourceHygieneRule(Rule):
    """R18: acquired handles are with-scoped, class-owned, or returned."""

    rule_id = "R18"
    title = "resource-hygiene"
    fix_hint = (
        "wrap the acquisition in a with statement, or store the handle where "
        "a matching .close() owns it (same scope or same class)"
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        if module.module in config.resource_allowlist:
            return
        parents = self._parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not self._is_acquisition(node):
                continue
            verdict = self._owner_of(node, parents)
            if verdict is None:
                continue
            yield self.finding(
                module,
                node,
                f"{self._describe(node)} {verdict}; the handle has no owner "
                "and leaks when this scope unwinds",
            )

    # -- classification --------------------------------------------------------

    @staticmethod
    def _is_acquisition(call: ast.Call) -> bool:
        if isinstance(call.func, ast.Name):
            return call.func.id == "open"
        if isinstance(call.func, ast.Attribute):
            return call.func.attr in _ACQUIRE_TAILS
        return False

    @staticmethod
    def _describe(call: ast.Call) -> str:
        name = dotted_name(call.func) or "the acquisition"
        return f"{name}(...)"

    def _owner_of(
        self, call: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[str]:
        """None when owned; otherwise a short description of the leak."""
        # climb to the enclosing statement, noting with-item membership
        node: ast.AST = call
        while True:
            parent = parents.get(node)
            if parent is None:
                return None  # detached (should not happen)
            if isinstance(parent, ast.withitem) and parent.context_expr is node:
                return None  # with open(...) as f  /  with closing(open(...))
            if isinstance(node, ast.stmt):
                break
            node = parent
        stmt = node
        value = getattr(stmt, "value", None)
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            value = value.value
        if isinstance(stmt, (ast.Return, ast.Expr)) and value is call:
            # the handle itself is returned/yielded: the caller owns it
            return None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                scope = self._enclosing_scope(stmt, parents)
                if self._name_released(target.id, scope):
                    return None
                return (
                    f"is assigned to {target.id!r} but {target.id}.close() "
                    "never runs in this scope and the handle is not returned"
                )
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls = self._enclosing_class(stmt, parents)
                if cls is not None and self._attr_closed(target.attr, cls):
                    return None
                return (
                    f"is stored on self.{target.attr} but no method of the "
                    f"class calls self.{target.attr}.close()"
                )
        return "is used without a with statement"

    # -- ownership evidence ----------------------------------------------------

    @staticmethod
    def _name_released(name: str, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
            if isinstance(node, (ast.Return, ast.Yield)) and isinstance(
                node.value, ast.Name
            ) and node.value.id == name:
                return True
            if isinstance(node, ast.withitem) and isinstance(
                node.context_expr, ast.Name
            ) and node.context_expr.id == name:
                return True
        return False

    @staticmethod
    def _attr_closed(attr: str, cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "close"
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == attr
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
            ):
                return True
        return False

    # -- tree plumbing ---------------------------------------------------------

    @staticmethod
    def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        return parents

    @staticmethod
    def _enclosing_scope(stmt: ast.stmt, parents: Dict[ast.AST, ast.AST]) -> ast.AST:
        node: ast.AST = stmt
        while node in parents:
            node = parents[node]
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return node
        return node

    @staticmethod
    def _enclosing_class(
        stmt: ast.stmt, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[ast.ClassDef]:
        node: ast.AST = stmt
        while node in parents:
            node = parents[node]
            if isinstance(node, ast.ClassDef):
                return node
        return None
