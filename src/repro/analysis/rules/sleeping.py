"""Rule R13: no bare ``time.sleep`` outside the resilience layer.

An ad-hoc sleep is backpressure the policy layer cannot see: it isn't
bounded by the retry budget, doesn't show up in the retry metrics, and
can't be replaced by a fake clock in tests.  Blocking waits belong in
``repro.resilience`` (``Retry.call`` is the one sanctioned sleeper);
everything else either goes through a policy or doesn't wait at all.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["NoSleepRule"]


@register_rule
class NoSleepRule(Rule):
    """R13: blocking sleeps live in repro.resilience, nowhere else."""

    rule_id = "R13"
    title = "no-bare-sleep"
    fix_hint = (
        "route the wait through repro.resilience (Retry's backoff or a "
        "breaker cooldown) instead of sleeping inline"
    )

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        return not any(module.in_package(m) for m in config.sleep_allowlist)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        # names the module has bound directly to time.sleep
        # (``from time import sleep [as snooze]``)
        direct: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        direct.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sleep = (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ) or (isinstance(func, ast.Name) and func.id in direct)
            if is_sleep:
                yield self.finding(
                    module,
                    node,
                    "bare time.sleep hides backpressure from the resilience "
                    "policies and their metrics",
                )
