"""Rule R11: no unseeded NumPy randomness.

Reproducibility is this project's whole point: ingest, key-framing, the
synthetic corpus, and the IVF coarse quantizer must produce identical
results run over run.  NumPy's legacy global-RNG API (``np.random.rand``,
``np.random.seed``, ``np.random.shuffle``, ...) draws from hidden process
state that any import can perturb, and an argument-less
``default_rng()`` seeds from the OS.  Both make results unrepeatable, so
every random draw must flow through a ``Generator`` constructed with an
explicit seed: ``np.random.default_rng(seed)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["SeededRandomnessRule"]

#: numpy.random members that are fine to call: explicit-state constructors.
_STATEFUL_CONSTRUCTORS = frozenset(
    {"default_rng", "SeedSequence", "Generator", "RandomState",
     "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64"}
)

#: constructors that seed from the OS when called without arguments.
_NEEDS_SEED_ARG = frozenset({"default_rng", "SeedSequence", "RandomState"})


def _attribute_chain(node: ast.expr) -> str:
    """``a.b.c`` for a pure Name/Attribute chain, '' otherwise.

    Unlike :func:`~repro.analysis.rules.util.dotted_name` this does NOT
    look through intermediate calls: ``default_rng(s).random()`` must
    not be mistaken for a second ``default_rng`` call.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _numpy_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted prefix for numpy imports.

    Covers ``import numpy [as np]``, ``from numpy import random [as r]``,
    and ``from numpy.random import rand [as r]``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else "numpy"
                    )
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "numpy" or node.module.startswith("numpy."):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


@register_rule
class SeededRandomnessRule(Rule):
    """R11: numpy randomness must come from an explicitly seeded Generator."""

    rule_id = "R11"
    title = "seeded-randomness"
    fix_hint = (
        "construct a generator with an explicit seed -- "
        "rng = np.random.default_rng(seed) -- and draw from it"
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        aliases = _numpy_aliases(module.tree)
        if not aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _attribute_chain(node.func)
            if not name:
                continue
            head, _, rest = name.partition(".")
            canonical = aliases.get(head)
            if canonical is None:
                continue
            full = f"{canonical}.{rest}" if rest else canonical
            if not full.startswith("numpy.random."):
                continue
            member = full[len("numpy.random."):].split(".")[0]
            if member not in _STATEFUL_CONSTRUCTORS:
                yield self.finding(
                    module,
                    node,
                    f"'{name}' draws from numpy's hidden global RNG; "
                    "results depend on process history",
                )
            elif member in _NEEDS_SEED_ARG and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    f"'{name}()' without a seed draws entropy from the OS; "
                    "pass an explicit seed",
                )
