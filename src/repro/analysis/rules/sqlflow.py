"""Rule R16: dynamic SQL cannot reach an execute site through a variable.

R4 checks the expression *at* the ``execute()`` call; the classic escape
is one assignment of indirection::

    q = f"DELETE FROM {table}"   # R4 never sees this
    db.execute(q)                # R4 sees a harmless Name

R16 closes the gap with reaching definitions: for every ``execute``-family
call whose statement argument is a plain name, every definition of that
name that can reach the call site is classified with the same
dynamic-SQL detector R4 uses.  One dynamic reaching definition is enough
to flag -- on some path the interpolated string arrives at the database.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import build_cfg, reaching_definitions
from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule
from repro.analysis.rules.sql import EXECUTE_METHODS, classify_dynamic_sql

__all__ = ["SqlDataflowRule"]


@register_rule
class SqlDataflowRule(Rule):
    """R16: reaching-definitions extension of R4 across assignments."""

    rule_id = "R16"
    title = "sql-dataflow"
    fix_hint = (
        "build the statement with the repro.db.sql helpers (or a literal "
        "with ? placeholders) in every branch that can reach the execute call"
    )

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        yield from self._check_body(module, config, module.tree.body, "module body")
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_body(
                    module, config, node.body, f"{node.name}()"
                )

    # -- one scope -------------------------------------------------------------

    def _check_body(
        self,
        module: ModuleInfo,
        config: LintConfig,
        body: Sequence[ast.stmt],
        scope: str,
    ) -> Iterable[Finding]:
        cfg = build_cfg(body)
        if not cfg.nodes:
            return
        reaching = reaching_definitions(cfg)
        for sid, stmt in cfg.stmts.items():
            for call, arg in self._execute_calls(stmt):
                if classify_dynamic_sql(arg, config) is not None:
                    continue  # R4 already flags the expression at the site
                if not isinstance(arg, ast.Name):
                    continue
                for def_stmt, reason in self._dynamic_defs(
                    arg.id, reaching.get(sid, set()), cfg, config
                ):
                    yield self.finding(
                        module,
                        call,
                        f"in {scope}, SQL variable {arg.id!r} defined at line "
                        f"{def_stmt.lineno} as {reason} reaches this "
                        f".{call.func.attr}() call; statements must be "  # type: ignore[union-attr]
                        "literals or repro.db.sql builder output on every path",
                    )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _execute_calls(stmt: ast.stmt) -> List[Tuple[ast.Call, ast.expr]]:
        """``execute``-family calls directly in this statement's expressions.

        Nested blocks are separate CFG nodes, so only this statement's own
        child *expressions* are scanned (the If test, the Assign value...),
        never its child statements.
        """
        out: List[Tuple[ast.Call, ast.expr]] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                continue
            for node in ast.walk(child):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in EXECUTE_METHODS
                    and node.args
                    and not isinstance(node.args[0], ast.Starred)
                ):
                    out.append((node, node.args[0]))
        return out

    @staticmethod
    def _dynamic_defs(
        name: str, defs, cfg, config: LintConfig
    ) -> List[Tuple[ast.stmt, str]]:
        out: List[Tuple[ast.stmt, str]] = []
        for definition in sorted(defs, key=lambda d: d.stmt_id):
            if definition.name != name:
                continue
            stmt = cfg.stmts[definition.stmt_id]
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.op, (ast.Add, ast.Mod)):
                    out.append((stmt, "an augmented (+=) string build"))
                continue
            if value is None:
                continue
            reason = classify_dynamic_sql(value, config)
            if reason is not None:
                out.append((stmt, reason))
        return out
