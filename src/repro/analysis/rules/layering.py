"""Rule R14: the whole-program architecture DAG.

R5 keeps the numeric substrate pure; R14 generalizes that contract to
every layer.  ``LintConfig.layers`` names the architecture bottom-up
(substrate -> format/policy -> storage/compute -> index -> core ->
interfaces); a module may import its own package and strictly *lower*
layers, never a peer or anything above it.  On top of the layer check,
the module-level import graph must stay acyclic -- a cycle means no
start order exists in which both modules are importable, which is
exactly what the scatter-gather refactor (ROADMAP items 1-3) cannot
tolerate in shard workers that import a subset of the tree.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import Finding, LintConfig, ModelRule, register_rule
from repro.analysis.project import ProjectModel

__all__ = ["LayerDagRule"]


def _rank_of(module: str, layers: Tuple[Tuple[str, ...], ...]) -> Optional[Tuple[int, str]]:
    """``(rank, matched prefix)`` of a module, or None when unconstrained."""
    best: Optional[Tuple[int, str]] = None
    for rank, packages in enumerate(layers):
        for prefix in packages:
            if module == prefix or module.startswith(prefix + "."):
                if best is None or len(prefix) > len(best[1]):
                    best = (rank, prefix)
    return best


@register_rule
class LayerDagRule(ModelRule):
    """R14: imports respect the layer DAG and the module graph is acyclic."""

    rule_id = "R14"
    title = "layer-dag"
    fix_hint = (
        "depend downward only: move the shared code into a lower layer, or "
        "invert the dependency (callback/registry) instead of importing up "
        "or sideways; see the layer table in docs/static_analysis.md"
    )

    def check_model(self, model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
        yield from self._check_layers(model, config)
        yield from self._check_cycles(model)

    # -- layered imports -------------------------------------------------------

    def _check_layers(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for mod_name in sorted(model.all_import_edges):
            info = model.modules[mod_name]
            src = _rank_of(mod_name, config.layers)
            if src is None:
                continue  # unconstrained module (e.g. the root package)
            src_rank, src_prefix = src
            for target in sorted(model.all_import_edges[mod_name]):
                if target == src_prefix or target.startswith(src_prefix + "."):
                    continue  # own package
                dst = _rank_of(target, config.layers)
                if dst is None:
                    continue
                dst_rank, dst_prefix = dst
                if dst_rank < src_rank:
                    continue  # downward: allowed
                direction = "its own layer" if dst_rank == src_rank else "a higher layer"
                yield self.finding_at(
                    info.path,
                    self._import_line(info.tree, target) or 1,
                    f"{mod_name} (layer {src_rank}: {src_prefix}) imports "
                    f"{target} (layer {dst_rank}: {dst_prefix}), which is in "
                    f"{direction}; the architecture DAG only allows downward "
                    "imports",
                )

    @staticmethod
    def _import_line(tree: ast.Module, target: str) -> Optional[int]:
        """Line of the first import statement mentioning ``target``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == target or alias.name.startswith(target + "."):
                        return node.lineno
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == target or node.module.startswith(target + "."):
                    return node.lineno
        return None

    # -- cycles ----------------------------------------------------------------

    def _check_cycles(self, model: ProjectModel) -> Iterable[Finding]:
        for cycle in model.import_cycles():
            anchor = cycle[0]
            info = model.modules[anchor]
            chain = " -> ".join(cycle + [cycle[0]])
            # one finding per cycle, anchored at its alphabetically first
            # member, so a cycle does not explode into N duplicate findings
            edges: Dict[str, List[str]] = {
                m: sorted(t for t in model.import_edges[m] if t in cycle)
                for m in cycle
            }
            detail = "; ".join(f"{m} imports {', '.join(ts)}" for m, ts in edges.items() if ts)
            yield self.finding_at(
                info.path,
                1,
                f"module-level import cycle: {chain} ({detail}); break it "
                "with a function-level import or by extracting the shared "
                "piece downward",
            )
