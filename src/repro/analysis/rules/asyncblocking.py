"""Rule R20: no blocking calls inside ``async def`` bodies.

One blocking call on the event loop stalls every queued request at
once: the micro-batcher stops draining, admission control sheds load it
should never have seen, and the latency SLO dies quietly.  Blocking
work belongs on an executor thread (``loop.run_in_executor``), behind
``asyncio.sleep``, or in the synchronous layers below the front-end.

The rule walks every ``async def`` in the project model and flags
direct calls to the blocking families this codebase actually has:
``time.sleep``, synchronous ``socket`` / ``sqlite3`` module calls, and
``WorkerPool`` fan-out (``.map()`` / ``parallel_map``), which blocks
until the slowest worker returns.  Nested ``def``\\ s and lambdas are
skipped -- they are deferred bodies, not loop-time execution (a nested
sync helper is its own call-graph node, and a lambda is usually the
very thing being shipped to an executor).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Tuple

from repro.analysis.engine import Finding, LintConfig, ModelRule, register_rule
from repro.analysis.project import ProjectModel, dotted

__all__ = ["AsyncBlockingRule"]

#: blocking stdlib modules: any direct call into them from async code stalls
#: the loop (socket/sqlite3 have no awaitable API; time.sleep by definition)
_BLOCKING_MODULES = frozenset({"socket", "sqlite3"})

_HINTS = {
    "sleep": "use `await asyncio.sleep(...)` instead",
    "socket": "use asyncio streams (open_connection/start_server) or run_in_executor",
    "sqlite3": "run the database call via loop.run_in_executor",
    "map": (
        "WorkerPool fan-out blocks until the slowest worker; "
        "run it via loop.run_in_executor"
    ),
}


@register_rule
class AsyncBlockingRule(ModelRule):
    """R20: async bodies never call time.sleep / socket / sqlite3 / pool map."""

    rule_id = "R20"
    title = "async-no-blocking"
    fix_hint = (
        "move the blocking call off the event loop: await asyncio.sleep for "
        "waits, loop.run_in_executor for sync IO and WorkerPool fan-out"
    )

    def check_model(self, model: ProjectModel, config: LintConfig) -> Iterable[Finding]:
        for qual in sorted(model.functions):
            info = model.functions[qual]
            if not isinstance(info.node, ast.AsyncFunctionDef):
                continue
            sym = model.symbols.get(info.module)
            imports = sym.imports if sym is not None else {}
            module = model.modules[info.module]
            where = f"{info.cls}.{info.name}" if info.cls else info.name
            for node, label, hint in self._blocking_calls(info.node, imports):
                yield self.finding_at(
                    module.path,
                    node,
                    f"async def {where}() calls blocking {label}; it stalls "
                    f"the event loop and every queued request -- {hint}",
                )

    def _blocking_calls(
        self, func: ast.AsyncFunctionDef, imports: Dict[str, str]
    ) -> List[Tuple[ast.AST, str, str]]:
        def resolve(name: str) -> str:
            """Local name -> dotted target through the module's imports."""
            head, _, rest = name.partition(".")
            target = imports.get(head, head)
            return f"{target}.{rest}" if rest else target

        out: List[Tuple[ast.AST, str, str]] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # deferred bodies: not executed on the loop here
            if isinstance(node, ast.Call):
                out.extend(self._classify(node, resolve))
            stack.extend(ast.iter_child_nodes(node))
        out.sort(key=lambda item: getattr(item[0], "lineno", 0))
        return out

    @staticmethod
    def _classify(
        node: ast.Call, resolve: Callable[[str], str]
    ) -> List[Tuple[ast.AST, str, str]]:
        target = dotted(node.func)
        if not target:
            return []
        resolved = resolve(target)
        head = resolved.partition(".")[0]
        tail = resolved.rsplit(".", 1)[-1]
        if resolved == "time.sleep":
            return [(node, "time.sleep()", _HINTS["sleep"])]
        if head in _BLOCKING_MODULES:
            return [(node, f"{resolved}()", _HINTS[head])]
        if tail == "parallel_map" or (
            tail == "map" and isinstance(node.func, ast.Attribute)
        ):
            return [(node, f"{target}()", _HINTS["map"])]
        return []
