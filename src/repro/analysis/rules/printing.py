"""Rule R12: no bare ``print()`` outside CLI modules.

Library code that prints bypasses the structured logging layer: the
output has no level, no ``key=value`` fields, can't be silenced by a
deployment, and disappears when stdout is a pipe nobody reads.  Anything
a library module wants to say goes through ``repro.obs.log``; only the
modules whose *stdout is their user contract* (the ``repro`` CLI and the
reprolint runner -- ``config.cli_modules``) may print.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["NoPrintRule"]


@register_rule
class NoPrintRule(Rule):
    """R12: library modules log via repro.obs.log, never print()."""

    rule_id = "R12"
    title = "no-print"
    fix_hint = (
        "use repro.obs.log -- log.get_logger(__name__).info(event, **fields) "
        "-- or move the output into a cli_modules entry point"
    )

    def applies_to(self, module: ModuleInfo, config: LintConfig) -> bool:
        return not any(module.in_package(m) for m in config.cli_modules)

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "bare print() in library code bypasses structured logging",
                )
