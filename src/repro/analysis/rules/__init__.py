"""Built-in reprolint rules.

Importing this package registers every rule with the engine's catalogue
(mirroring how ``repro.features`` registers extractors).  The catalogue:

====  ==========================  ==============================================
id    name                        enforces
====  ==========================  ==============================================
R1    extractor-registered        FeatureExtractor subclasses register a name
R2    registry-unique             extractor names/tags collide nowhere
R3    feature-string-contract     to_string/from_string keep the header form
R4    parameterized-sql           no interpolated SQL at execute() sites
R5    pure-layers                 imaging/similarity stay IO- and layer-free
R6    exception-hygiene           no bare/swallowing except handlers
R7    no-mutable-defaults         no mutable default arguments
R8    explicit-exports            public modules declare a truthful __all__
R9    db-error-hierarchy          db layer raises DatabaseError subclasses
R10   extractor-module-imported   features/__init__ imports every extractor
R11   seeded-randomness           numpy randomness uses explicitly seeded RNGs
R12   no-print                    library code logs via repro.obs.log, not print
R13   no-bare-sleep               blocking sleeps live in repro.resilience only
R14   layer-dag                   imports follow the layer DAG, no import cycles
R15   fork-thread-safety          concurrent paths lock shared module state
R16   sql-dataflow                dynamic SQL cannot flow into execute() sites
R17   obs-coverage                public entry points reach a span or metric
R18   resource-hygiene            open()/connect() handles have a visible owner
R19   unused-import               module-level imports bind names that are used
R20   async-no-blocking           async def bodies never call blocking APIs
====  ==========================  ==============================================
"""

from repro.analysis.rules.asyncblocking import AsyncBlockingRule
from repro.analysis.rules.concurrency import ConcurrencySafetyRule
from repro.analysis.rules.errors import DbErrorHierarchyRule
from repro.analysis.rules.exports import ExportsRule
from repro.analysis.rules.extractors import (
    ExtractorModuleImportRule,
    ExtractorRegistrationRule,
    FeatureStringContractRule,
    RegistryUniquenessRule,
)
from repro.analysis.rules.hygiene import ExceptionHygieneRule, MutableDefaultRule
from repro.analysis.rules.imports_unused import UnusedImportRule
from repro.analysis.rules.layering import LayerDagRule
from repro.analysis.rules.obscoverage import ObsCoverageRule
from repro.analysis.rules.printing import NoPrintRule
from repro.analysis.rules.purity import PurityRule
from repro.analysis.rules.randomness import SeededRandomnessRule
from repro.analysis.rules.resources import ResourceHygieneRule
from repro.analysis.rules.sleeping import NoSleepRule
from repro.analysis.rules.sql import SqlConstructionRule
from repro.analysis.rules.sqlflow import SqlDataflowRule

__all__ = [
    "ExtractorRegistrationRule",
    "RegistryUniquenessRule",
    "FeatureStringContractRule",
    "ExtractorModuleImportRule",
    "SqlConstructionRule",
    "PurityRule",
    "ExceptionHygieneRule",
    "MutableDefaultRule",
    "ExportsRule",
    "DbErrorHierarchyRule",
    "SeededRandomnessRule",
    "NoPrintRule",
    "NoSleepRule",
    "LayerDagRule",
    "ConcurrencySafetyRule",
    "SqlDataflowRule",
    "ObsCoverageRule",
    "ResourceHygieneRule",
    "UnusedImportRule",
    "AsyncBlockingRule",
]
