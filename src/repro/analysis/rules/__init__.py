"""Built-in reprolint rules.

Importing this package registers every rule with the engine's catalogue
(mirroring how ``repro.features`` registers extractors).  The catalogue:

====  ==========================  ==============================================
id    name                        enforces
====  ==========================  ==============================================
R1    extractor-registered        FeatureExtractor subclasses register a name
R2    registry-unique             extractor names/tags collide nowhere
R3    feature-string-contract     to_string/from_string keep the header form
R4    parameterized-sql           no interpolated SQL at execute() sites
R5    pure-layers                 imaging/similarity stay IO- and layer-free
R6    exception-hygiene           no bare/swallowing except handlers
R7    no-mutable-defaults         no mutable default arguments
R8    explicit-exports            public modules declare a truthful __all__
R9    db-error-hierarchy          db layer raises DatabaseError subclasses
R10   extractor-module-imported   features/__init__ imports every extractor
R11   seeded-randomness           numpy randomness uses explicitly seeded RNGs
R12   no-print                    library code logs via repro.obs.log, not print
R13   no-bare-sleep               blocking sleeps live in repro.resilience only
====  ==========================  ==============================================
"""

from repro.analysis.rules.errors import DbErrorHierarchyRule
from repro.analysis.rules.exports import ExportsRule
from repro.analysis.rules.extractors import (
    ExtractorModuleImportRule,
    ExtractorRegistrationRule,
    FeatureStringContractRule,
    RegistryUniquenessRule,
)
from repro.analysis.rules.hygiene import ExceptionHygieneRule, MutableDefaultRule
from repro.analysis.rules.printing import NoPrintRule
from repro.analysis.rules.purity import PurityRule
from repro.analysis.rules.randomness import SeededRandomnessRule
from repro.analysis.rules.sleeping import NoSleepRule
from repro.analysis.rules.sql import SqlConstructionRule

__all__ = [
    "ExtractorRegistrationRule",
    "RegistryUniquenessRule",
    "FeatureStringContractRule",
    "ExtractorModuleImportRule",
    "SqlConstructionRule",
    "PurityRule",
    "ExceptionHygieneRule",
    "MutableDefaultRule",
    "ExportsRule",
    "DbErrorHierarchyRule",
    "SeededRandomnessRule",
    "NoPrintRule",
    "NoSleepRule",
]
