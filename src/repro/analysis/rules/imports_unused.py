"""Rule R19: module-level imports are used.

An unused import is dead weight with teeth: it creates layer edges R14
then has to police, drags import-time cost into every process that
loads the module, and misleads readers about what the module depends
on.  R19 flags module-level imports whose bound name is never
referenced.  It is deliberately conservative -- a name counts as used if
it appears anywhere in the AST, in ``__all__``, or textually anywhere
else in the source (which covers string annotations and docstring
references) -- and package ``__init__`` modules are exempt because
their imports *are* their API (R10 owns that contract).

R19 findings are mechanical, so the autofixer (``repro lint --fix``)
can remove them.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set, Tuple

from repro.analysis.engine import Finding, LintConfig, ModuleInfo, Rule, register_rule

__all__ = ["UnusedImportRule"]


def module_level_imports(tree: ast.Module) -> List[Tuple[ast.stmt, ast.alias, str]]:
    """``(stmt, alias, bound name)`` for every top-level import binding.

    ``TYPE_CHECKING`` blocks count as module level -- their imports bind
    names used in annotations and are subject to the same hygiene.
    """
    out: List[Tuple[ast.stmt, ast.alias, str]] = []

    def visit(stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    out.append((stmt, alias, alias.asname or alias.name.split(".")[0]))
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    out.append((stmt, alias, alias.asname or alias.name))
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)

    visit(tree.body)
    return out


def unused_import_bindings(module: ModuleInfo) -> List[Tuple[ast.stmt, ast.alias, str]]:
    """The subset of module-level import bindings nothing references."""
    if module.path.endswith("__init__.py"):
        return []
    imports = module_level_imports(module.tree)
    if not imports:
        return []
    import_stmts = {id(stmt) for stmt, _, _ in imports}
    used: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and id(node) in import_stmts:
            continue
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            head = node
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name):
                used.add(head.id)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            used.add(elt.value)
    out: List[Tuple[ast.stmt, ast.alias, str]] = []
    for stmt, alias, name in imports:
        if name in used:
            continue
        if _marked_deliberate(module, stmt):
            continue
        if _textually_used(module, stmt, name):
            continue
        out.append((stmt, alias, name))
    return out


def _marked_deliberate(module: ModuleInfo, stmt: ast.stmt) -> bool:
    """``# noqa`` on the import line marks a side-effect/probe import."""
    line = module.lines[stmt.lineno - 1] if stmt.lineno <= len(module.lines) else ""
    return "# noqa" in line


def _textually_used(module: ModuleInfo, stmt: ast.stmt, name: str) -> bool:
    """Word-boundary fallback covering string annotations and doc prose."""
    pattern = re.compile(rf"\b{re.escape(name)}\b")
    span = range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1)
    for lineno, line in enumerate(module.lines, start=1):
        if lineno in span:
            continue
        if pattern.search(line):
            return True
    return False


@register_rule
class UnusedImportRule(Rule):
    """R19: no module-level import binds a name nothing uses."""

    rule_id = "R19"
    title = "unused-import"
    fix_hint = "delete the import (repro lint --fix removes it mechanically)"

    def check(self, module: ModuleInfo, config: LintConfig) -> Iterable[Finding]:
        for stmt, alias, name in unused_import_bindings(module):
            shown = alias.name if alias.asname is None else f"{alias.name} as {alias.asname}"
            yield self.finding(
                module,
                stmt,
                f"import {shown!r} binds {name!r} which is never used in "
                "this module",
            )
