"""SARIF 2.1.0 serialization of a lint :class:`Report`.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it lets CI surface reprolint findings as inline
annotations instead of a log to scroll.  The subset produced here is the
conventional one: a single run, the rule catalogue under
``tool.driver.rules``, one ``result`` per finding with a physical
location.  Paths are emitted relative to the repository root when they
fall under it, as SARIF consumers expect.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import all_rules
from repro.analysis.findings import Finding, Report, Severity

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "report_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptors() -> List[dict]:
    rules = []
    for cls in all_rules():
        doc = (cls.__doc__ or cls.title).strip().splitlines()[0]
        rules.append(
            {
                "id": cls.rule_id,
                "name": cls.title,
                "shortDescription": {"text": doc},
                "helpUri": "docs/static_analysis.md",
                "defaultConfiguration": {"level": _level(cls.severity)},
            }
        )
    return rules


def _artifact_uri(path: str, root: Optional[Path]) -> str:
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def _result(finding: Finding, rule_index: dict, root: Optional[Path]) -> dict:
    return {
        "ruleId": finding.rule_id,
        "ruleIndex": rule_index.get(finding.rule_id, -1),
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path, root),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }


def report_to_sarif(report: Report, root: Optional[Path] = None, indent: int = 2) -> str:
    """The report as a SARIF 2.1.0 JSON document."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/static_analysis.md",
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": (root or Path.cwd()).resolve().as_uri() + "/"}
                },
                "results": [
                    _result(f, rule_index, root)
                    for f in report.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=indent)
