"""Intraprocedural dataflow: per-function CFG + reaching definitions.

The per-file AST rules answer "does this expression look wrong"; the
dataflow layer answers "can a value *assembled* here *arrive* there".
R16 uses it to catch the classic escape from R4::

    q = f"SELECT * FROM {table}"   # assembled here
    ...
    db.execute(q)                  # arrives here -- R4 never sees it

The machinery is deliberately small: statements are CFG nodes (no basic
blocks -- function bodies here are tens of statements, not thousands),
branches and loops add edges conservatively, and the reaching-definitions
transfer function is the textbook gen/kill over a worklist.  ``try``
blocks edge every statement to every handler, which over-approximates --
exactly what a linter wants (never miss a flow that could happen).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "Definition", "build_cfg", "reaching_definitions"]


@dataclass(frozen=True)
class Definition:
    """One assignment of one name: ``(name, node id of the statement)``."""

    name: str
    stmt_id: int


@dataclass
class _Node:
    """One statement in the CFG."""

    stmt_id: int
    stmt: ast.stmt
    defs: Tuple[str, ...] = ()
    succ: Set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph over the statements of one function (or module)."""

    def __init__(self) -> None:
        self.nodes: Dict[int, _Node] = {}
        self.entry: Optional[int] = None
        #: statement id -> the ast.stmt (for callers mapping back to source)
        self.stmts: Dict[int, ast.stmt] = {}

    def _add(self, stmt: ast.stmt) -> int:
        sid = len(self.nodes)
        self.nodes[sid] = _Node(stmt_id=sid, stmt=stmt, defs=tuple(_defined_names(stmt)))
        self.stmts[sid] = stmt
        if self.entry is None:
            self.entry = sid
        return sid

    def _edge(self, src: Optional[int], dst: int) -> None:
        if src is not None:
            self.nodes[src].succ.add(dst)


def _assigned_in_target(target: ast.expr, out: List[str]) -> None:
    if isinstance(target, ast.Name):
        out.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _assigned_in_target(elt, out)
    elif isinstance(target, ast.Starred):
        _assigned_in_target(target.value, out)
    # Attribute / Subscript stores mutate objects, not name bindings


def _defined_names(stmt: ast.stmt) -> List[str]:
    """Names (re)bound by this statement -- the gen/kill set key."""
    out: List[str] = []
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            _assigned_in_target(t, out)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        _assigned_in_target(stmt.target, out)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        _assigned_in_target(stmt.target, out)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                _assigned_in_target(item.optional_vars, out)
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        out.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name != "*":
                out.append(alias.asname or alias.name.split(".")[0])
    return out


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """A CFG over ``body`` (a function body or a module body).

    Compound statements contribute their header as a node (``if``/``for``
    headers bind names and evaluate expressions) and then their nested
    blocks; every branch merges back conservatively.
    """
    cfg = CFG()

    def walk(stmts: Sequence[ast.stmt], preds: List[int]) -> List[int]:
        """Wire ``stmts`` after ``preds``; return the block's exits."""
        current = preds
        for stmt in stmts:
            sid = cfg._add(stmt)
            for p in current:
                cfg._edge(p, sid)
            if isinstance(stmt, ast.If):
                body_exits = walk(stmt.body, [sid])
                else_exits = walk(stmt.orelse, [sid]) if stmt.orelse else [sid]
                current = body_exits + else_exits
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                body_exits = walk(stmt.body, [sid])
                for ex in body_exits:  # loop back edge
                    cfg._edge(ex, sid)
                else_exits = walk(stmt.orelse, [sid]) if stmt.orelse else []
                current = [sid] + body_exits + else_exits
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = walk(stmt.body, [sid])
            elif isinstance(stmt, ast.Try):
                body_exits = walk(stmt.body, [sid])
                handler_exits: List[int] = []
                for handler in stmt.handlers:
                    # any statement in the try body may jump to any handler
                    h_exits = walk(handler.body, body_exits + [sid])
                    handler_exits.extend(h_exits)
                else_exits = (
                    walk(stmt.orelse, body_exits) if stmt.orelse else body_exits
                )
                merged = else_exits + handler_exits
                if stmt.finalbody:
                    current = walk(stmt.finalbody, merged)
                else:
                    current = merged
            elif isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                current = []  # control leaves the straight line
            else:
                current = [sid]
        return current

    walk(list(body), [])
    return cfg


def reaching_definitions(cfg: CFG) -> Dict[int, Set[Definition]]:
    """For each statement id: the definitions live *on entry* to it.

    Textbook worklist: ``out = gen U (in - kill)`` where a statement's
    gen set is its own (name, stmt_id) pairs and its kill set is every
    other definition of the names it rebinds.
    """
    in_sets: Dict[int, Set[Definition]] = {sid: set() for sid in cfg.nodes}
    out_sets: Dict[int, Set[Definition]] = {sid: set() for sid in cfg.nodes}
    preds: Dict[int, Set[int]] = {sid: set() for sid in cfg.nodes}
    for sid, node in cfg.nodes.items():
        for s in node.succ:
            preds[s].add(sid)

    work = list(cfg.nodes)
    while work:
        sid = work.pop(0)
        node = cfg.nodes[sid]
        new_in: Set[Definition] = set()
        for p in preds[sid]:
            new_in |= out_sets[p]
        killed = set(node.defs)
        new_out = {d for d in new_in if d.name not in killed}
        new_out |= {Definition(name, sid) for name in node.defs}
        if new_in != in_sets[sid] or new_out != out_sets[sid]:
            in_sets[sid] = new_in
            out_sets[sid] = new_out
            work.extend(node.succ)
    return in_sets
