"""Whole-program model: module graph, symbol tables, approximate call graph.

The per-file rules (R1-R13) see one AST at a time; the contracts the
sharded/async roadmap items depend on -- layering, import cycles, what
runs on which thread -- are properties of the *program*.  This module
builds that program view once per lint run, from the :class:`ModuleInfo`
objects the engine has already parsed:

- **module graph** -- which project module imports which (module-level
  and nested imports are tracked separately, because only module-level
  imports can deadlock at import time);
- **symbol tables** -- per-module bindings: functions, classes,
  module-level constants, *mutable* module state, locks and ContextVars
  (the raw material of the concurrency rules);
- **call graph** -- an approximate, name-based graph over every function
  and method in the project.  Calls through ``self``/duck-typed
  attributes resolve to *every* project function with that bare name;
  this over-approximation is deliberate: reachability answers "could
  this run on a web thread / in a pool worker" and must not miss.

Nothing here imports the engine (the engine imports us lazily), so the
analysis layers themselves satisfy the layer DAG they enforce.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import ModuleInfo

__all__ = [
    "FunctionInfo",
    "ModuleSymbols",
    "ProjectModel",
    "dotted",
]

#: binding kinds recorded in a module symbol table
KIND_FUNCTION = "function"
KIND_CLASS = "class"
KIND_MUTABLE = "mutable"
KIND_CONSTANT = "constant"
KIND_LOCK = "lock"
KIND_CONTEXTVAR = "contextvar"
KIND_IMPORT = "import"

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)
_LOCK_CALLS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute/Call chains; "" otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = dotted(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    if isinstance(node, ast.Call):
        return dotted(node.func)
    return ""


def _is_type_checking_guard(node: ast.If) -> bool:
    """``if TYPE_CHECKING:`` (possibly ``typing.TYPE_CHECKING``)."""
    return dotted(node.test).rsplit(".", 1)[-1] == "TYPE_CHECKING"


@dataclass
class FunctionInfo:
    """One function or method, with its outgoing call edges."""

    qualname: str  # "module:Class.method" or "module:function"
    module: str
    name: str  # bare name ("method")
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None  # owning class name, if a method
    calls: List[str] = field(default_factory=list)  # dotted call targets
    lineno: int = 0

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ModuleSymbols:
    """Module-level bindings of one module, by kind."""

    module: str
    kinds: Dict[str, str] = field(default_factory=dict)  # name -> KIND_*
    imports: Dict[str, str] = field(default_factory=dict)  # local name -> dotted target
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)

    def names_of_kind(self, kind: str) -> List[str]:
        return sorted(n for n, k in self.kinds.items() if k == kind)


class ProjectModel:
    """The whole-program view: built once, shared by every model rule."""

    def __init__(self, modules: Sequence["ModuleInfo"]):
        self.modules: Dict[str, "ModuleInfo"] = {m.module: m for m in modules}
        self.symbols: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}  # qualname -> info
        #: bare function name -> qualnames (the approximate-dispatch buckets)
        self.by_name: Dict[str, List[str]] = {}
        #: module -> imported project modules (module level only)
        self.import_edges: Dict[str, Set[str]] = {}
        #: module -> imported project modules (including function-level)
        self.all_import_edges: Dict[str, Set[str]] = {}
        for m in modules:
            self._index_module(m)
        self._link_calls()

    # -- construction ----------------------------------------------------------

    def _resolve_import_target(self, target: str) -> Optional[str]:
        """Longest project-module prefix of a dotted import target."""
        parts = target.split(".")
        for cut in range(len(parts), 0, -1):
            cand = ".".join(parts[:cut])
            if cand in self.modules:
                return cand
        return None

    def _index_module(self, m: "ModuleInfo") -> None:
        sym = ModuleSymbols(module=m.module)
        self.symbols[m.module] = sym
        top_edges: Set[str] = set()
        all_edges: Set[str] = set()
        self.import_edges[m.module] = top_edges
        self.all_import_edges[m.module] = all_edges

        def record_import(node: ast.stmt, top_level: bool) -> None:
            if isinstance(node, ast.Import):
                pairs = [(a.asname or a.name.split(".")[0], a.name) for a in node.names]
            else:
                base = node.module or ""
                if node.level:  # relative import: anchor at the right package
                    parts = m.module.split(".")
                    # level 1 is this package: for pkg/__init__ that is the
                    # module itself, for pkg.mod it is the parent
                    keep = len(parts) - node.level
                    if m.path.endswith("__init__.py"):
                        keep += 1
                    anchor = parts[: max(keep, 0)]
                    base = ".".join(anchor + ([base] if base else []))
                pairs = [
                    (a.asname or a.name, f"{base}.{a.name}" if base else a.name)
                    for a in node.names
                    if a.name != "*"
                ]
            for local, target in pairs:
                if top_level:
                    sym.imports[local] = target
                    sym.kinds.setdefault(local, KIND_IMPORT)
                resolved = self._resolve_import_target(target)
                if resolved is not None and resolved != m.module:
                    all_edges.add(resolved)
                    if top_level:
                        top_edges.add(resolved)

        def classify_assign(value: ast.expr) -> str:
            if isinstance(value, _MUTABLE_LITERALS):
                # empty or literal containers are mutable module state
                return KIND_MUTABLE
            if isinstance(value, ast.Call):
                tail = dotted(value.func).rsplit(".", 1)[-1]
                if tail in _MUTABLE_CALLS:
                    return KIND_MUTABLE
                if tail in _LOCK_CALLS:
                    return KIND_LOCK
                if tail == "ContextVar":
                    return KIND_CONTEXTVAR
            return KIND_CONSTANT

        def visit_top(stmts: Iterable[ast.stmt], type_checking: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    record_import(stmt, top_level=not type_checking)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    sym.kinds[stmt.name] = KIND_FUNCTION
                    self._index_function(m, stmt, cls=None)
                elif isinstance(stmt, ast.ClassDef):
                    sym.kinds[stmt.name] = KIND_CLASS
                    sym.classes[stmt.name] = stmt
                    for sub in stmt.body:
                        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._index_function(m, sub, cls=stmt.name)
                elif isinstance(stmt, ast.Assign):
                    kind = classify_assign(stmt.value)
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            sym.kinds[target.id] = kind
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    if isinstance(stmt.target, ast.Name):
                        sym.kinds[stmt.target.id] = classify_assign(stmt.value)
                elif isinstance(stmt, ast.If):
                    visit_top(stmt.body, type_checking or _is_type_checking_guard(stmt))
                    visit_top(stmt.orelse, type_checking)
                elif isinstance(stmt, ast.Try):
                    visit_top(stmt.body, type_checking)
                    for handler in stmt.handlers:
                        visit_top(handler.body, type_checking)
                    visit_top(stmt.orelse, type_checking)
                    visit_top(stmt.finalbody, type_checking)

        visit_top(m.tree.body, type_checking=False)

        # nested (function-level) imports still create architecture edges
        for node in ast.walk(m.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        record_import(sub, top_level=False)

    def _index_function(
        self, m: "ModuleInfo", node: ast.AST, cls: Optional[str]
    ) -> FunctionInfo:
        name = node.name
        qual = f"{m.module}:{cls}.{name}" if cls else f"{m.module}:{name}"
        info = FunctionInfo(
            qualname=qual,
            module=m.module,
            name=name,
            node=node,
            cls=cls,
            lineno=node.lineno,
        )
        self.functions[qual] = info
        self.by_name.setdefault(name, []).append(qual)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                target = dotted(sub.func)
                if target:
                    info.calls.append(target)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
                # nested defs become their own nodes (pool-shipped closures)
                if not any(
                    f.node is sub for f in self.functions.values()
                ):
                    self._index_function(m, sub, cls=cls)
        return info

    def _link_calls(self) -> None:
        """Resolve each function's called names to project qualnames."""
        self.call_edges: Dict[str, Set[str]] = {}
        for qual, info in self.functions.items():
            edges: Set[str] = set()
            sym = self.symbols.get(info.module)
            for target in info.calls:
                edges.update(self._resolve_call(info, sym, target))
            self.call_edges[qual] = edges

    def _resolve_call(
        self, info: FunctionInfo, sym: Optional[ModuleSymbols], target: str
    ) -> Set[str]:
        out: Set[str] = set()
        head, _, _ = target.partition(".")
        tail = target.rsplit(".", 1)[-1]
        if "." not in target:
            # bare name: same-module function, imported function, or class
            local = f"{info.module}:{target}"
            if local in self.functions:
                return {local}
            if sym is not None:
                kind = sym.kinds.get(target)
                if kind == KIND_CLASS:
                    init = f"{info.module}:{target}.__init__"
                    return {init} if init in self.functions else set()
                imported = sym.imports.get(target)
                if imported is not None:
                    out.update(self._resolve_dotted(imported))
                    return out
            # unknown bare name (builtin, closure arg): fall through to bucket
            out.update(self.by_name.get(target, ()))
            return out
        if sym is not None and head in sym.imports:
            # module.attr / imported-name.attr
            out.update(self._resolve_dotted(sym.imports[head] + target[len(head):]))
            if out:
                return out
        # attribute call on an unknown receiver: name-based bucket
        out.update(self.by_name.get(tail, ()))
        return out

    def _resolve_dotted(self, target: str) -> Set[str]:
        """``pkg.mod.func`` / ``pkg.mod.Class`` -> project qualnames."""
        mod = self._resolve_import_target(target)
        if mod is None:
            return set()
        rest = target[len(mod):].lstrip(".")
        if not rest:
            return set()
        parts = rest.split(".")
        cand = f"{mod}:{parts[0]}"
        if cand in self.functions and len(parts) == 1:
            return {cand}
        sym = self.symbols.get(mod)
        if sym is not None and parts[0] in sym.classes:
            if len(parts) >= 2:
                meth = f"{mod}:{parts[0]}.{parts[1]}"
                return {meth} if meth in self.functions else set()
            init = f"{mod}:{parts[0]}.__init__"
            return {init} if init in self.functions else set()
        # re-exported name: fall back to the bare-name bucket
        return set(self.by_name.get(parts[-1], ()))

    # -- queries ---------------------------------------------------------------

    def resolve_call(self, info: FunctionInfo, target: str) -> Set[str]:
        """Qualnames a dotted call target could reach from inside ``info``."""
        return self._resolve_call(info, self.symbols.get(info.module), target)

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from ``roots`` qualnames."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.call_edges.get(cur, ()) - seen)
        return seen

    def public_functions(self, module_prefixes: Sequence[str]) -> List[FunctionInfo]:
        """Public functions/methods of public classes under the prefixes."""
        out: List[FunctionInfo] = []
        for qual in sorted(self.functions):
            info = self.functions[qual]
            if not any(
                info.module == p or info.module.startswith(p + ".")
                for p in module_prefixes
            ):
                continue
            if not info.is_public or info.name.startswith("__"):
                continue
            if info.cls is not None and info.cls.startswith("_"):
                continue
            out.append(info)
        return out

    def import_cycles(self) -> List[List[str]]:
        """Module-level import cycles (strongly connected components > 1).

        Edges from a package ``__init__`` to its *own* submodules are
        excluded: that is the sanctioned registration/re-export idiom
        (R10 requires it), and Python resolves it at import time.
        """
        graph: Dict[str, Set[str]] = {}
        for mod, edges in self.import_edges.items():
            is_init = self.modules[mod].path.endswith("__init__.py")
            kept = set()
            for dst in edges:
                if is_init and dst.startswith(mod + "."):
                    continue  # package re-exporting its own children
                if dst in self.modules:
                    kept.add(dst)
            graph[mod] = kept
        return _tarjan_sccs(graph)


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components with > 1 node, iteratively."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(start, iter(sorted(graph[start])))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in graph:
                    continue
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
    return sccs
