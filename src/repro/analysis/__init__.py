"""reprolint -- project-native static analysis for the CBVR system.

The retrieval pipeline is held together by conventions no unit test sees
end-to-end: extractors must register, feature strings must round-trip
through their ``<tag> <n> <v1>...`` VARCHAR2 form, the DB layer must stay
parameterized, and the imaging/similarity substrate must stay pure.  This
package checks those contracts statically, over the AST, in CI.

Three entry points:

- ``repro lint [paths]`` (and ``python -m repro.analysis``) -- the CLI;
- :func:`lint_paths` / :func:`lint_source` -- the library API;
- ``tests/analysis/test_self_clean.py`` -- the tier-1 gate that runs the
  full rule set over ``src/repro`` on every test run.

See ``docs/static_analysis.md`` for the rule catalogue and how to add a
rule.
"""

from repro.analysis.baseline import Baseline, partition_findings
from repro.analysis.dataflow import CFG, Definition, build_cfg, reaching_definitions
from repro.analysis.engine import (
    LintConfig,
    LintEngine,
    ModelRule,
    ModuleInfo,
    ProjectRule,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    module_name_for,
    register_rule,
)
from repro.analysis.findings import Finding, Report, Severity
from repro.analysis.fixes import FixResult, fix_module
from repro.analysis.project import FunctionInfo, ModuleSymbols, ProjectModel
from repro.analysis.runner import main
from repro.analysis.sarif import report_to_sarif

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "LintConfig",
    "LintEngine",
    "ModuleInfo",
    "Rule",
    "ProjectRule",
    "ModelRule",
    "register_rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "main",
    "ProjectModel",
    "ModuleSymbols",
    "FunctionInfo",
    "CFG",
    "Definition",
    "build_cfg",
    "reaching_definitions",
    "Baseline",
    "partition_findings",
    "FixResult",
    "fix_module",
    "report_to_sarif",
]
