"""Mechanical autofixes: ``repro lint --fix`` / ``--diff``.

Only rules whose remedy is unambiguous get an autofix; everything else
stays human work.  Three qualify today:

- **R7 no-mutable-defaults** -- the default becomes ``None`` and the
  function body gains ``if arg is None: arg = <original>`` right after
  the docstring;
- **R8 explicit-exports** -- stale names are dropped from a literal
  ``__all__``;
- **R19 unused-import** -- the unused alias is removed (or the whole
  import statement, when nothing it binds is used).

Fixes are computed from the AST and applied to the raw source as
bottom-up span edits, so earlier edits never invalidate later
coordinates.  Pragma-suppressed findings are skipped -- a ``# reprolint:
disable`` means the human decided, and ``--fix`` must not overrule them.
The result is idempotent: running the fixer on its own output yields no
further edits (the tests assert this).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.engine import (
    LintConfig,
    ModuleInfo,
    _scan_pragmas,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.exports import _bound_names, _find_all_assign, _literal_names
from repro.analysis.rules.hygiene import MutableDefaultRule
from repro.analysis.rules.imports_unused import unused_import_bindings

__all__ = ["FixResult", "fix_module", "FIXABLE_RULES"]

FIXABLE_RULES = ("R7", "R8", "R19")


@dataclass
class FixResult:
    """The outcome of fixing one module."""

    source: str
    applied: List[str] = field(default_factory=list)  # human-readable edits

    @property
    def changed(self) -> bool:
        return bool(self.applied)


#: one span replacement: (start_line, start_col, end_line, end_col, text)
_Edit = Tuple[int, int, int, int, str]


def fix_module(module: ModuleInfo, config: Optional[LintConfig] = None) -> FixResult:
    """Apply every mechanical fix to one parsed module."""
    config = config or LintConfig()
    sup = _scan_pragmas(module.lines, module.tree)

    def suppressed(rule_id: str, line: int) -> bool:
        probe = Finding(
            rule_id=rule_id,
            severity=Severity.ERROR,
            path=module.path,
            line=line,
            col=1,
            message="",
        )
        return sup.hides(probe)

    edits: List[_Edit] = []
    removals: List[int] = []  # whole lines to delete (1-based)
    applied: List[str] = []

    if config.wants("R19"):
        _fix_unused_imports(module, suppressed, edits, removals, applied)
    if config.wants("R8"):
        _fix_stale_all(module, suppressed, edits, applied)
    if config.wants("R7"):
        _fix_mutable_defaults(module, config, suppressed, edits, applied)

    if not applied:
        return FixResult(source=module.source)
    return FixResult(source=_apply(module.source, edits, removals), applied=applied)


# -- R19: unused imports -------------------------------------------------------


def _fix_unused_imports(
    module: ModuleInfo,
    suppressed,
    edits: List[_Edit],
    removals: List[int],
    applied: List[str],
) -> None:
    unused = unused_import_bindings(module)
    by_stmt: dict = {}
    for stmt, alias, name in unused:
        if suppressed("R19", stmt.lineno):
            continue
        by_stmt.setdefault(id(stmt), (stmt, []))[1].append((alias, name))
    for stmt, dead in by_stmt.values():
        keep = [a for a in stmt.names if all(a is not d for d, _ in dead)]
        start, end = stmt.lineno, stmt.end_lineno or stmt.lineno
        if not keep:
            removals.extend(range(start, end + 1))
            applied.append(f"R19 {module.path}:{start}: removed unused import")
            continue
        indent = " " * stmt.col_offset
        rendered = ", ".join(
            a.name if a.asname is None else f"{a.name} as {a.asname}" for a in keep
        )
        if isinstance(stmt, ast.ImportFrom):
            dots = "." * stmt.level
            text = f"{indent}from {dots}{stmt.module or ''} import {rendered}"
        else:
            text = f"{indent}import {rendered}"
        edits.append((start, 0, end, len(module.lines[end - 1]), text))
        names = ", ".join(name for _, name in dead)
        applied.append(f"R19 {module.path}:{start}: dropped unused {names}")


# -- R8: stale __all__ entries -------------------------------------------------


def _fix_stale_all(
    module: ModuleInfo, suppressed, edits: List[_Edit], applied: List[str]
) -> None:
    assign = _find_all_assign(module.tree)
    if assign is None or suppressed("R8", assign.lineno):
        return
    names = _literal_names(assign.value)
    if names is None:
        return
    bound = _bound_names(module.tree)
    if bound is None or "__getattr__" in bound:
        return
    stale = [n for n in names if n not in bound]
    if not stale:
        return
    kept = [n for n in names if n in bound]
    open_ch, close_ch = ("[", "]") if isinstance(assign.value, ast.List) else ("(", ")")
    start, end = assign.value.lineno, assign.value.end_lineno or assign.value.lineno
    if start == end:
        body = ", ".join(repr(n) for n in kept)
        if isinstance(assign.value, ast.Tuple) and len(kept) == 1:
            body += ","
        text_value = f"{open_ch}{body}{close_ch}"
    else:
        indent = " " * assign.col_offset
        entries = "".join(f"{indent}    {n!r},\n" for n in kept)
        text_value = f"{open_ch}\n{entries}{indent}{close_ch}"
    edits.append(
        (start, assign.value.col_offset, end, assign.value.end_col_offset, text_value)
    )
    applied.append(
        f"R8 {module.path}:{assign.lineno}: dropped stale __all__ entries "
        + ", ".join(repr(n) for n in stale)
    )


# -- R7: mutable default arguments ---------------------------------------------


def _fix_mutable_defaults(
    module: ModuleInfo,
    config: LintConfig,
    suppressed,
    edits: List[_Edit],
    applied: List[str],
) -> None:
    rule = MutableDefaultRule()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # lambdas have no body to patch: left to the human
        args = node.args
        pos = args.posonlyargs + args.args
        pairs: List[Tuple[ast.arg, ast.expr]] = list(
            zip(pos[len(pos) - len(args.defaults):], args.defaults)
        )
        pairs += [
            (a, d)
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        rewrites: List[Tuple[ast.arg, ast.expr, str]] = []
        for arg, default in pairs:
            if not rule._is_mutable(default):
                continue
            if suppressed("R7", default.lineno):
                continue
            original = ast.get_source_segment(module.source, default)
            if original is None or "\n" in original:
                continue  # multi-line default: not mechanically safe
            rewrites.append((arg, default, original))
        if not rewrites:
            continue
        body = node.body
        insert_at = body[0].lineno  # insert before the first real statement
        if (
            isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            insert_at = (body[0].end_lineno or body[0].lineno) + 1
            indent = " " * body[0].col_offset
            if len(body) > 1:
                insert_at = body[1].lineno
                indent = " " * body[1].col_offset
        else:
            indent = " " * body[0].col_offset
        guard_lines = [
            f"{indent}if {arg.arg} is None:\n{indent}    {arg.arg} = {original}\n"
            for arg, _, original in rewrites
        ]
        # insertion rides on a zero-width edit at the target line's column 0
        edits.append((insert_at, 0, insert_at, 0, "".join(guard_lines)))
        for arg, default, original in rewrites:
            edits.append(
                (
                    default.lineno,
                    default.col_offset,
                    default.end_lineno or default.lineno,
                    default.end_col_offset,
                    "None",
                )
            )
            applied.append(
                f"R7 {module.path}:{default.lineno}: {node.name}({arg.arg}="
                f"{original}) defaults to None with an in-body guard"
            )


# -- span application ----------------------------------------------------------


def _apply(source: str, edits: Sequence[_Edit], removals: Sequence[int]) -> str:
    lines = source.splitlines(keepends=True)
    # bottom-up so earlier coordinates stay valid
    for start, s_col, end, e_col, text in sorted(
        edits, key=lambda e: (e[0], e[1]), reverse=True
    ):
        head = lines[start - 1][:s_col]
        tail = lines[end - 1][e_col:]
        replacement = head + text + tail
        lines[start - 1 : end] = replacement.splitlines(keepends=True) or [""]
    for lineno in sorted(set(removals), reverse=True):
        del lines[lineno - 1]
    return "".join(lines)
