"""Finding baselines: adopt a linter without a big-bang cleanup.

A baseline file records the findings a codebase has *today* so the gate
can demand "no new findings" immediately and the backlog can be burned
down separately.  It is also a ratchet: entries that no longer match
anything are reported as stale, so the file only ever shrinks.

Fingerprints are deliberately line-free -- ``(rule, path, message)`` with
a count -- so unrelated edits above a known finding do not break the
match.  Counts matter: two identical findings baseline as two, and a
third new one still fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple, Union

from repro.analysis.findings import Finding, Report

__all__ = ["Baseline", "partition_findings"]

_Key = Tuple[str, str, str]


def _fingerprint(finding: Finding) -> _Key:
    return (finding.rule_id, Path(finding.path).as_posix(), finding.message)


class Baseline:
    """A multiset of accepted finding fingerprints."""

    def __init__(self, entries: Counter = None):
        self.entries: Counter = Counter() if entries is None else entries

    def __len__(self) -> int:
        return sum(self.entries.values())

    # -- persistence -----------------------------------------------------------

    @classmethod
    def from_report(cls, report: Report) -> "Baseline":
        return cls(Counter(_fingerprint(f) for f in report.findings))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries: Counter = Counter()
        for item in payload.get("findings", []):
            key = (item["rule"], item["path"], item["message"])
            entries[key] += int(item.get("count", 1))
        return cls(entries)

    def dump(self, path: Union[str, Path]) -> None:
        findings = [
            {"rule": rule, "path": fpath, "message": message, "count": count}
            for (rule, fpath, message), count in sorted(self.entries.items())
        ]
        payload = {"version": 1, "tool": "reprolint", "findings": findings}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition_findings(
    report: Report, baseline: Baseline
) -> Tuple[List[Finding], int, List[_Key]]:
    """``(new findings, n suppressed, stale fingerprints)``.

    A finding matching a baseline entry consumes one unit of its count;
    findings beyond the recorded count are *new*.  Entries with unspent
    count are stale -- the finding was fixed and the ratchet should drop it.
    """
    budget = Counter(baseline.entries)
    new: List[Finding] = []
    suppressed = 0
    for finding in report.findings:
        key = _fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return new, suppressed, stale
