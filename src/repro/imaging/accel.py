"""Fast-path switch for accelerated imaging/feature kernels.

Several hot kernels (thresholding, region labelling, the Gabor bank, the
correlogram) have two implementations: a straightforward *reference* form
that mirrors the paper's pseudo-code, and an accelerated form (vectorized
NumPy, or SciPy where available) that produces identical results.  The
reference forms stay in the tree for three reasons: they are the oracle
the equivalence tests compare against, they are the fallback when SciPy
is absent, and the benchmark harness uses them to measure the
pre-acceleration code path.

The switch is process-global and defaults to fast.  Worker processes
inherit the default, so parallel ingest always runs the fast path.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "HAVE_SCIPY",
    "fast_paths_enabled",
    "set_fast_paths",
    "reference_paths",
]

try:  # SciPy is optional; every fast path has a NumPy or reference fallback
    import scipy.ndimage as _ndimage  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_SCIPY = False

_FAST = True


def fast_paths_enabled() -> bool:
    """True when accelerated kernels should be used."""
    return _FAST


def set_fast_paths(enabled: bool) -> None:
    """Globally enable/disable the accelerated kernels."""
    global _FAST
    _FAST = bool(enabled)


@contextmanager
def reference_paths() -> Iterator[None]:
    """Run the enclosed block on the reference implementations."""
    previous = _FAST
    set_fast_paths(False)
    try:
        yield
    finally:
        set_fast_paths(previous)
