"""Automatic thresholding.

§4.8 binarizes via JAI's ``Histogram.getMinFuzzinessThreshold()``, which is
Huang & Wang's minimum-fuzziness method: for each candidate threshold, pixels
get a membership value to their side's mean, and the threshold minimizing the
total Shannon fuzziness entropy is chosen.  Otsu's method is provided as a
cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.imaging import accel

__all__ = ["min_fuzziness_threshold", "otsu_threshold", "binarize"]


def _cumulative_means(hist: np.ndarray):
    """Cumulative counts and intensity sums from both ends."""
    levels = np.arange(hist.size, dtype=np.float64)
    w = hist.astype(np.float64)
    cum_n = np.cumsum(w)
    cum_s = np.cumsum(w * levels)
    return levels, w, cum_n, cum_s


def min_fuzziness_threshold(hist: np.ndarray) -> int:
    """Huang minimum-fuzziness threshold over a 256-bin histogram.

    Returns the threshold ``t`` such that pixels ``<= t`` are background.
    For a constant image (all mass in one bin) the bin index is returned.
    """
    hist = np.asarray(hist, dtype=np.float64)
    if hist.ndim != 1 or hist.size < 2:
        raise ValueError("histogram must be 1-D with at least 2 bins")
    total = hist.sum()
    if total <= 0:
        raise ValueError("histogram is empty")

    nz = np.nonzero(hist)[0]
    first, last = int(nz[0]), int(nz[-1])
    if first == last:
        return first

    levels, w, cum_n, cum_s = _cumulative_means(hist)
    c = float(last - first)  # normalizer so memberships stay in [0.5, 1]

    if accel.fast_paths_enabled():
        return _min_fuzziness_vectorized(levels, w, cum_n, cum_s, total, first, last, c)

    best_t, best_e = first, np.inf
    for t in range(first, last):
        n0 = cum_n[t]
        n1 = total - n0
        if n0 == 0 or n1 == 0:
            continue
        mu0 = cum_s[t] / n0
        mu1 = (cum_s[-1] - cum_s[t]) / n1
        # membership of level g to its class mean
        mem = np.empty(hist.size)
        mem[: t + 1] = 1.0 / (1.0 + np.abs(levels[: t + 1] - mu0) / c)
        mem[t + 1 :] = 1.0 / (1.0 + np.abs(levels[t + 1 :] - mu1) / c)
        mem = np.clip(mem, 1e-12, 1 - 1e-12)
        entropy = -(mem * np.log(mem) + (1 - mem) * np.log(1 - mem))
        e = float(np.dot(w, entropy))
        if e < best_e:
            best_e, best_t = e, t
    return int(best_t)


def _min_fuzziness_vectorized(
    levels: np.ndarray,
    w: np.ndarray,
    cum_n: np.ndarray,
    cum_s: np.ndarray,
    total: float,
    first: int,
    last: int,
    c: float,
) -> int:
    """All candidate thresholds in one pass; same first-minimum semantics."""
    ts = np.arange(first, last)
    n0 = cum_n[ts]
    n1 = total - n0
    valid = (n0 > 0) & (n1 > 0)
    mu0 = cum_s[ts] / np.where(n0 > 0, n0, 1.0)
    mu1 = (cum_s[-1] - cum_s[ts]) / np.where(n1 > 0, n1, 1.0)
    grid = levels[np.newaxis, :]
    # select the class mean first, then evaluate the membership formula
    # once -- identical per-element arithmetic, half the matrix work
    mu = np.where(grid <= ts[:, np.newaxis], mu0[:, np.newaxis], mu1[:, np.newaxis])
    mem = 1.0 / (1.0 + np.abs(grid - mu) / c)
    mem = np.clip(mem, 1e-12, 1 - 1e-12)
    entropy = -(mem * np.log(mem) + (1 - mem) * np.log(1 - mem))
    e = entropy @ w
    e[~valid] = np.inf
    return int(ts[np.argmin(e)])


def otsu_threshold(hist: np.ndarray) -> int:
    """Otsu's between-class-variance-maximizing threshold."""
    hist = np.asarray(hist, dtype=np.float64)
    total = hist.sum()
    if total <= 0:
        raise ValueError("histogram is empty")
    levels = np.arange(hist.size, dtype=np.float64)
    w0 = np.cumsum(hist)
    s0 = np.cumsum(hist * levels)
    w1 = total - w0
    mu_total = s0[-1]
    valid = (w0 > 0) & (w1 > 0)
    mu0 = np.where(w0 > 0, s0 / np.maximum(w0, 1e-12), 0.0)
    mu1 = np.where(w1 > 0, (mu_total - s0) / np.maximum(w1, 1e-12), 0.0)
    between = w0 * w1 * (mu0 - mu1) ** 2
    between[~valid] = -1.0
    return int(np.argmax(between))


def binarize(gray: np.ndarray, threshold: float = None) -> np.ndarray:
    """Binarize a gray array: pixel > threshold -> True (foreground).

    With ``threshold=None`` the minimum-fuzziness threshold of the image's
    own 256-bin histogram is used, replicating §4.8's preprocessor.
    """
    a = np.asarray(gray)
    if a.ndim != 2:
        raise ValueError("binarize expects a 2-D gray array")
    if threshold is None:
        hist = np.bincount(a.astype(np.uint8).ravel(), minlength=256)
        threshold = min_fuzziness_threshold(hist)
    return a > threshold
