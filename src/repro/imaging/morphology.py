"""Binary morphology with the paper's structuring element.

The region-growing preprocessor (§4.8) binarizes the frame and then applies
dilate, erode, erode, dilate with a 5x5 kernel whose active area is the
central 3x3 box::

    0 0 0 0 0
    0 1 1 1 0
    0 1 1 1 0
    0 1 1 1 0
    0 0 0 0 0

That close-then-open sequence removes speckle while preserving region shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PAPER_KERNEL",
    "binary_dilate",
    "binary_erode",
    "binary_open",
    "binary_close",
]

#: §4.8's 5x5 structuring element (only the central 3x3 is set).
PAPER_KERNEL = np.array(
    [
        [0, 0, 0, 0, 0],
        [0, 1, 1, 1, 0],
        [0, 1, 1, 1, 0],
        [0, 1, 1, 1, 0],
        [0, 0, 0, 0, 0],
    ],
    dtype=bool,
)


def _as_binary(arr: np.ndarray) -> np.ndarray:
    a = np.asarray(arr)
    if a.ndim != 2:
        raise ValueError("morphology expects a 2-D array")
    return a.astype(bool)


def _offsets(kernel: np.ndarray):
    k = np.asarray(kernel).astype(bool)
    cy, cx = (k.shape[0] - 1) // 2, (k.shape[1] - 1) // 2
    ys, xs = np.nonzero(k)
    return list(zip(ys - cy, xs - cx))


def binary_dilate(arr: np.ndarray, kernel: np.ndarray = PAPER_KERNEL) -> np.ndarray:
    """Binary dilation: a pixel is set if any kernel-covered pixel is set."""
    a = _as_binary(arr)
    out = np.zeros_like(a)
    h, w = a.shape
    for dy, dx in _offsets(kernel):
        src = a[
            max(0, -dy) : h - max(0, dy),
            max(0, -dx) : w - max(0, dx),
        ]
        out[
            max(0, dy) : h - max(0, -dy),
            max(0, dx) : w - max(0, -dx),
        ] |= src
    return out


def binary_erode(arr: np.ndarray, kernel: np.ndarray = PAPER_KERNEL) -> np.ndarray:
    """Binary erosion: a pixel survives only if all kernel-covered pixels are set.

    Pixels outside the image are treated as unset, so regions shrink at the
    border (matching JAI's zero boundary).
    """
    a = _as_binary(arr)
    out = np.ones_like(a)
    h, w = a.shape
    for dy, dx in _offsets(kernel):
        shifted = np.zeros_like(a)
        src = a[
            max(0, dy) : h - max(0, -dy),
            max(0, dx) : w - max(0, -dx),
        ]
        shifted[
            max(0, -dy) : h - max(0, dy),
            max(0, -dx) : w - max(0, dx),
        ] = src
        out &= shifted
    return out


def binary_open(arr: np.ndarray, kernel: np.ndarray = PAPER_KERNEL) -> np.ndarray:
    """Erosion followed by dilation (removes small foreground speckle)."""
    return binary_dilate(binary_erode(arr, kernel), kernel)


def binary_close(arr: np.ndarray, kernel: np.ndarray = PAPER_KERNEL) -> np.ndarray:
    """Dilation followed by erosion (fills small holes)."""
    return binary_erode(binary_dilate(arr, kernel), kernel)
