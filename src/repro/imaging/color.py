"""Color-space conversion and quantization.

The paper's extractors need three conversions:

- RGB -> gray, using the band-combine matrix ``{0.114, 0.587, 0.299}`` that
  appears verbatim in the GLCM and region-growing pseudo-code (§4.3, §4.8).
- RGB -> HSV, used by the auto color correlogram (§4.7), which quantizes
  pixels "in HSV color space".
- Quantizers that map continuous color to a small number of discrete bins
  (the histogram's 256 levels, the correlogram's 64 HSV bins).
"""

from __future__ import annotations

import numpy as np

from repro.imaging import accel

__all__ = [
    "GRAY_WEIGHTS",
    "rgb_to_gray",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "quantize_uniform",
    "quantize_hsv",
    "quantize_rgb_to_index",
]

#: The paper's luminance matrix, given in (B, G, R) order in the pseudo-code;
#: expressed here in (R, G, B) order.
GRAY_WEIGHTS = (0.299, 0.587, 0.114)


def rgb_to_gray(rgb: np.ndarray) -> np.ndarray:
    """BT.601 luma: ``0.299 R + 0.587 G + 0.114 B``, rounded to uint8.

    Accepts ``(h, w, 3)`` uint8 (or float) and returns ``(h, w)`` uint8.
    A 2-D input is assumed already gray and returned as uint8 unchanged.
    """
    arr = np.asarray(rgb)
    if arr.ndim == 2:
        return arr.astype(np.uint8, copy=False)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3) array, got {arr.shape}")
    w = np.asarray(GRAY_WEIGHTS, dtype=np.float64)
    gray = arr.astype(np.float64) @ w
    if accel.fast_paths_enabled():
        # same clamp as np.clip without its per-call dtype-limit lookups
        return np.minimum(np.maximum(np.rint(gray), 0), 255).astype(np.uint8)
    return np.clip(np.rint(gray), 0, 255).astype(np.uint8)


def rgb_to_hsv(rgb: np.ndarray) -> np.ndarray:
    """Vectorized RGB -> HSV.

    Input: ``(..., 3)`` uint8 or float in [0, 255].
    Output: float64 array of the same shape with
    H in [0, 360), S in [0, 1], V in [0, 1].
    """
    arr = np.asarray(rgb, dtype=np.float64) / 255.0
    if arr.shape[-1] != 3:
        raise ValueError(f"expected trailing RGB axis of size 3, got {arr.shape}")
    r, g, b = arr[..., 0], arr[..., 1], arr[..., 2]
    maxc = np.max(arr, axis=-1)
    minc = np.min(arr, axis=-1)
    delta = maxc - minc
    nz = delta > 0
    rmax = nz & (maxc == r)
    gmax = nz & (maxc == g) & ~rmax

    if accel.fast_paths_enabled():
        # piecewise hue, branchless: every element evaluates the same
        # formula its masked-assignment equivalent would, so results are
        # identical (the safe denominators only feed discarded lanes)
        safe_delta = np.where(nz, delta, 1.0)
        h = np.where(
            rmax,
            np.mod((g - b) / safe_delta, 6.0),
            np.where(gmax, (b - r) / safe_delta + 2.0, (r - g) / safe_delta + 4.0),
        )
        h = np.where(nz, h, 0.0)
        h *= 60.0
        s = np.where(maxc > 0, delta / np.where(maxc > 0, maxc, 1.0), 0.0)
        return np.stack([h, s, maxc], axis=-1)

    h = np.zeros_like(maxc)
    bmax = nz & ~rmax & ~gmax
    h[rmax] = np.mod((g[rmax] - b[rmax]) / delta[rmax], 6.0)
    h[gmax] = (b[gmax] - r[gmax]) / delta[gmax] + 2.0
    h[bmax] = (r[bmax] - g[bmax]) / delta[bmax] + 4.0
    h *= 60.0

    s = np.zeros_like(maxc)
    vs = maxc > 0
    s[vs] = delta[vs] / maxc[vs]

    return np.stack([h, s, maxc], axis=-1)


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Vectorized HSV -> RGB (uint8).

    Input: ``(..., 3)`` with H in [0, 360), S and V in [0, 1].
    """
    arr = np.asarray(hsv, dtype=np.float64)
    if arr.shape[-1] != 3:
        raise ValueError(f"expected trailing HSV axis of size 3, got {arr.shape}")
    h, s, v = arr[..., 0], arr[..., 1], arr[..., 2]
    h = np.mod(h, 360.0) / 60.0
    i = np.floor(h).astype(np.int64)
    f = h - i
    p = v * (1.0 - s)
    q = v * (1.0 - s * f)
    t = v * (1.0 - s * (1.0 - f))

    i = i % 6
    r = np.choose(i, [v, q, p, p, t, v])
    g = np.choose(i, [t, v, v, q, p, p])
    b = np.choose(i, [p, p, t, v, v, q])
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb * 255.0), 0, 255).astype(np.uint8)


def quantize_uniform(values: np.ndarray, levels: int, maximum: float = 255.0) -> np.ndarray:
    """Uniformly quantize ``values`` in [0, maximum] into ``levels`` bins.

    Returns int64 bin indices in [0, levels - 1].
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    arr = np.asarray(values, dtype=np.float64)
    idx = np.floor(arr * levels / (maximum + 1e-12)).astype(np.int64)
    if accel.fast_paths_enabled():
        return np.minimum(np.maximum(idx, 0), levels - 1)
    return np.clip(idx, 0, levels - 1)


def quantize_hsv(
    rgb: np.ndarray,
    h_bins: int = 8,
    s_bins: int = 4,
    v_bins: int = 2,
) -> np.ndarray:
    """Quantize RGB pixels into ``h_bins * s_bins * v_bins`` HSV-space bins.

    This is the correlogram's "quantize the actual pixel (done in HSV color
    space)" step.  The default 8x4x2 = 64 bins matches the correlogram
    configuration whose output the paper dumps in §5.1.

    Input: ``(..., 3)`` RGB. Output: int64 bin index array of shape ``(...)``.
    """
    hsv = rgb_to_hsv(rgb)
    hq = quantize_uniform(hsv[..., 0], h_bins, maximum=360.0)
    sq = quantize_uniform(hsv[..., 1], s_bins, maximum=1.0)
    vq = quantize_uniform(hsv[..., 2], v_bins, maximum=1.0)
    return (hq * s_bins + sq) * v_bins + vq


def quantize_rgb_to_index(rgb: np.ndarray, bins_per_channel: int = 4) -> np.ndarray:
    """Quantize RGB pixels into ``bins_per_channel ** 3`` flat bin indices."""
    arr = np.asarray(rgb)
    if arr.shape[-1] != 3:
        raise ValueError(f"expected trailing RGB axis of size 3, got {arr.shape}")
    q = quantize_uniform(arr, bins_per_channel)
    return (q[..., 0] * bins_per_channel + q[..., 1]) * bins_per_channel + q[..., 2]
