"""Imaging substrate: a from-scratch NumPy replacement for the Java JAI stack.

The paper's pseudo-code manipulates ``PlanarImage`` / ``RenderedImage`` /
``BufferedImage`` objects through the Java Advanced Imaging (JAI) library.
This package reimplements every imaging operation the paper relies on:

- :mod:`repro.imaging.image` -- the :class:`Image` container plus PPM/PGM/BMP
  file codecs (so images can round-trip through real files and database BLOBs).
- :mod:`repro.imaging.color` -- color-space conversion (RGB/HSV/gray) using the
  paper's own ``{0.114, 0.587, 0.299}`` luminance matrix, and quantizers.
- :mod:`repro.imaging.resize` -- nearest-neighbour and bilinear rescaling
  (the paper rescales to 300x300 with ``InterpolationNearest``).
- :mod:`repro.imaging.histogram` -- gray-level and per-channel histograms.
- :mod:`repro.imaging.filters` -- 2-D convolution and classic kernels.
- :mod:`repro.imaging.morphology` -- binary dilation/erosion with the paper's
  5x5 box structuring element.
- :mod:`repro.imaging.threshold` -- Huang's minimum-fuzziness threshold
  (JAI's ``Histogram.getMinFuzzinessThreshold`` equivalent).
- :mod:`repro.imaging.draw` -- a primitive rasterizer used by the synthetic
  video generator.
"""

from repro.imaging.image import Image, ImageFormatError, read_image, write_image
from repro.imaging.color import (
    hsv_to_rgb,
    rgb_to_gray,
    rgb_to_hsv,
    quantize_hsv,
    quantize_uniform,
)
from repro.imaging.resize import resize
from repro.imaging.histogram import channel_histogram, gray_histogram, rgb_histogram
from repro.imaging.filters import box_kernel, convolve2d, gaussian_kernel, sobel_gradients
from repro.imaging.morphology import binary_close, binary_dilate, binary_erode, binary_open
from repro.imaging.threshold import binarize, min_fuzziness_threshold

__all__ = [
    "Image",
    "ImageFormatError",
    "read_image",
    "write_image",
    "rgb_to_gray",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "quantize_hsv",
    "quantize_uniform",
    "resize",
    "gray_histogram",
    "rgb_histogram",
    "channel_histogram",
    "convolve2d",
    "gaussian_kernel",
    "box_kernel",
    "sobel_gradients",
    "binary_dilate",
    "binary_erode",
    "binary_open",
    "binary_close",
    "min_fuzziness_threshold",
    "binarize",
]
