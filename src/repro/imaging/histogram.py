"""Histogram computation.

The range-finder index (§4.2) consumes a 256-bin gray-level histogram; the
simple color histogram (§4.5) counts quantized color levels per channel.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import Image

__all__ = ["gray_histogram", "channel_histogram", "rgb_histogram"]


def gray_histogram(image: Image, bins: int = 256) -> np.ndarray:
    """256-bin (by default) histogram of the gray-level image.

    RGB inputs are converted with the paper's luminance matrix first.
    Returns an int64 array of length ``bins`` whose sum is ``width*height``.
    """
    gray = image.gray()
    if bins == 256:
        return np.bincount(gray.ravel(), minlength=256).astype(np.int64)
    idx = (gray.astype(np.int64) * bins) // 256
    return np.bincount(idx.ravel(), minlength=bins).astype(np.int64)


def channel_histogram(image: Image, channel: int, bins: int = 256) -> np.ndarray:
    """Histogram of a single RGB channel (0=R, 1=G, 2=B)."""
    if not image.is_rgb:
        raise ValueError("channel_histogram requires an RGB image")
    if channel not in (0, 1, 2):
        raise ValueError(f"channel must be 0, 1 or 2, got {channel}")
    vals = image.pixels[:, :, channel].ravel()
    if bins == 256:
        return np.bincount(vals, minlength=256).astype(np.int64)
    idx = (vals.astype(np.int64) * bins) // 256
    return np.bincount(idx, minlength=bins).astype(np.int64)


def rgb_histogram(image: Image, bins: int = 256) -> np.ndarray:
    """Stacked per-channel histograms ``(3, bins)`` -- hr(i), hg(i), hb(i)."""
    rgb = image.to_rgb()
    return np.stack([channel_histogram(rgb, c, bins) for c in range(3)])
