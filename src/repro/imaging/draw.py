"""A tiny primitive rasterizer.

The synthetic video generator composes scenes from primitives: filled
rectangles, circles, lines, linear gradients, and "text blocks" (rows of
dark rectangles standing in for rendered text on e-learning slides).
Everything draws into a mutable float canvas which is converted to an
:class:`~repro.imaging.image.Image` at the end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.imaging.image import Image

__all__ = ["Canvas"]

Color = Tuple[float, float, float]


class Canvas:
    """A mutable (h, w, 3) float canvas with simple drawing primitives.

    Coordinates are (x, y) with the origin at the top-left, matching the
    pixel addressing in the paper's pseudo-code.
    """

    def __init__(self, width: int, height: int, background: Color = (0, 0, 0)):
        if width <= 0 or height <= 0:
            raise ValueError("canvas must have positive dimensions")
        self.width = width
        self.height = height
        self.buf = np.empty((height, width, 3), dtype=np.float64)
        self.buf[:, :] = background

    # -- helpers ------------------------------------------------------------

    def _clip_box(self, x0: int, y0: int, x1: int, y1: int):
        x0, x1 = sorted((int(x0), int(x1)))
        y0, y1 = sorted((int(y0), int(y1)))
        return (
            max(0, x0),
            max(0, y0),
            min(self.width, x1),
            min(self.height, y1),
        )

    # -- primitives -----------------------------------------------------------

    def fill(self, color: Color) -> None:
        self.buf[:, :] = color

    def rect(self, x0: int, y0: int, x1: int, y1: int, color: Color) -> None:
        """Filled axis-aligned rectangle covering [x0, x1) x [y0, y1)."""
        x0, y0, x1, y1 = self._clip_box(x0, y0, x1, y1)
        if x0 < x1 and y0 < y1:
            self.buf[y0:y1, x0:x1] = color

    def circle(self, cx: float, cy: float, radius: float, color: Color) -> None:
        """Filled circle."""
        if radius <= 0:
            return
        x0, y0, x1, y1 = self._clip_box(
            int(np.floor(cx - radius)),
            int(np.floor(cy - radius)),
            int(np.ceil(cx + radius)) + 1,
            int(np.ceil(cy + radius)) + 1,
        )
        if x0 >= x1 or y0 >= y1:
            return
        ys, xs = np.mgrid[y0:y1, x0:x1]
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius**2
        self.buf[y0:y1, x0:x1][mask] = color

    def line(self, x0: float, y0: float, x1: float, y1: float, color: Color, width: int = 1) -> None:
        """Line drawn by dense sampling (adequate for synthetic scenes)."""
        length = max(abs(x1 - x0), abs(y1 - y0))
        n = max(int(np.ceil(length)) * 2, 2)
        ts = np.linspace(0.0, 1.0, n)
        xs = x0 + (x1 - x0) * ts
        ys = y0 + (y1 - y0) * ts
        half = max(0, (width - 1) // 2)
        for dx in range(-half, width - half):
            for dy in range(-half, width - half):
                xi = np.clip(np.rint(xs) + dx, 0, self.width - 1).astype(np.int64)
                yi = np.clip(np.rint(ys) + dy, 0, self.height - 1).astype(np.int64)
                self.buf[yi, xi] = color

    def vertical_gradient(self, top: Color, bottom: Color) -> None:
        """Fill the whole canvas with a top-to-bottom linear gradient."""
        t = np.linspace(0.0, 1.0, self.height)[:, np.newaxis]
        top_a = np.asarray(top, dtype=np.float64)
        bot_a = np.asarray(bottom, dtype=np.float64)
        rows = top_a[np.newaxis, :] * (1 - t) + bot_a[np.newaxis, :] * t
        self.buf[:, :] = rows[:, np.newaxis, :]

    def text_block(
        self,
        x: int,
        y: int,
        width: int,
        lines: int,
        color: Color,
        line_height: int = 6,
        rng: np.random.Generator = None,
    ) -> None:
        """Rows of thin rectangles approximating lines of text."""
        rng = rng or np.random.default_rng(0)
        for i in range(lines):
            ly = y + i * (line_height + 3)
            lw = int(width * float(rng.uniform(0.55, 1.0)))
            self.rect(x, ly, x + lw, ly + line_height, color)

    def add_noise(self, sigma: float, rng: np.random.Generator) -> None:
        """Additive Gaussian pixel noise (sensor-noise stand-in)."""
        if sigma <= 0:
            return
        self.buf += rng.normal(0.0, sigma, self.buf.shape)

    def blend_texture(self, texture: np.ndarray, alpha: float) -> None:
        """Blend a (h, w) float texture into all channels."""
        if texture.shape != (self.height, self.width):
            raise ValueError("texture shape must match canvas")
        self.buf = self.buf * (1 - alpha) + texture[:, :, np.newaxis] * alpha

    # -- output -----------------------------------------------------------------

    def to_image(self) -> Image:
        return Image.from_array(self.buf)
