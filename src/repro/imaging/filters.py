"""Spatial filtering: 2-D convolution and the classic kernels.

Used by the Gabor bank (§4.4), the Tamura directionality measure (Sobel
gradients), and the synthetic generator (Gaussian smoothing of noise fields).
Convolution uses a direct sliding-window path for small kernels and an FFT
path for large ones; both support 'reflect' and 'constant' boundaries.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "convolve2d",
    "gaussian_kernel",
    "box_kernel",
    "sobel_gradients",
    "SOBEL_X",
    "SOBEL_Y",
]

SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
SOBEL_Y = SOBEL_X.T.copy()


def convolve2d(arr: np.ndarray, kernel: np.ndarray, mode: str = "reflect") -> np.ndarray:
    """Convolve a 2-D float array with a 2-D kernel (true convolution).

    ``mode`` is ``'reflect'`` (default) or ``'constant'`` (zero padding).
    The output has the same shape as ``arr``; the kernel anchor is its
    center, ``((kh - 1) // 2, (kw - 1) // 2)``.
    """
    a = np.asarray(arr, dtype=np.float64)
    k = np.asarray(kernel, dtype=np.float64)
    if a.ndim != 2 or k.ndim != 2:
        raise ValueError("convolve2d expects 2-D array and kernel")
    if mode not in ("reflect", "constant"):
        raise ValueError(f"unknown boundary mode {mode!r}")

    kh, kw = k.shape
    # Pad so that a full sliding window sweep yields exactly a.shape outputs
    # anchored at the kernel center.
    top, bottom = (kh - 1) // 2, kh // 2
    left, right = (kw - 1) // 2, kw // 2
    pad_mode = "reflect" if mode == "reflect" else "constant"
    if pad_mode == "reflect" and (top >= a.shape[0] or left >= a.shape[1]):
        pad_mode = "constant"  # reflect cannot pad wider than the image
    padded = np.pad(a, ((top, bottom), (left, right)), mode=pad_mode)

    if kh * kw >= 169:  # FFT pays off for kernels 13x13 and up
        return _convolve_fft_valid(padded, k)

    kf = k[::-1, ::-1]  # flip for true convolution
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, kf)


def _convolve_fft_valid(padded: np.ndarray, k: np.ndarray) -> np.ndarray:
    """'valid'-size FFT convolution of a pre-padded array."""
    kh, kw = k.shape
    sh = padded.shape[0] + kh - 1
    sw = padded.shape[1] + kw - 1
    fa = np.fft.rfft2(padded, (sh, sw))
    fk = np.fft.rfft2(k, (sh, sw))
    full = np.fft.irfft2(fa * fk, (sh, sw))
    # 'valid' region of the full convolution:
    return full[kh - 1 : padded.shape[0], kw - 1 : padded.shape[1]]


def gaussian_kernel(sigma: float, radius: int = 0) -> np.ndarray:
    """Normalized 2-D Gaussian kernel. ``radius`` defaults to ceil(3*sigma)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if radius <= 0:
        radius = int(np.ceil(3.0 * sigma))
    ax = np.arange(-radius, radius + 1, dtype=np.float64)
    g1 = np.exp(-(ax**2) / (2.0 * sigma**2))
    k = np.outer(g1, g1)
    return k / k.sum()


def box_kernel(size: int) -> np.ndarray:
    """Normalized size x size box (mean) kernel."""
    if size <= 0:
        raise ValueError("size must be positive")
    return np.full((size, size), 1.0 / (size * size))


def sobel_gradients(gray: np.ndarray) -> tuple:
    """Return ``(gx, gy, magnitude, direction)`` Sobel gradients.

    ``direction`` is ``arctan2(gy, gx)`` in radians.
    """
    a = np.asarray(gray, dtype=np.float64)
    gx = convolve2d(a, SOBEL_X)
    gy = convolve2d(a, SOBEL_Y)
    mag = np.hypot(gx, gy)
    direction = np.arctan2(gy, gx)
    return gx, gy, mag, direction
