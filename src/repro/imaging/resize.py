"""Image rescaling.

The paper's key-frame extractor and naive-signature descriptor both begin by
rescaling frames ("Scales the original image ... Adding filter
InterpolationNearest for scaling", §4.6) -- to 300x300 with nearest-neighbour
interpolation.  Bilinear is provided as well for the synthetic generator's
smooth zooms.
"""

from __future__ import annotations

import numpy as np

from repro.imaging import accel
from repro.imaging.image import Image

__all__ = ["resize", "resize_array"]


def _nearest_indices(src: int, dst: int) -> np.ndarray:
    """Source indices chosen by nearest-neighbour for a dst-length axis."""
    # Sample at pixel centers: position (i + 0.5) * src/dst maps to floor().
    return np.minimum((np.arange(dst) + 0.5) * (src / dst), src - 1).astype(np.int64)


def resize_array(
    arr: np.ndarray, width: int, height: int, interpolation: str = "nearest"
) -> np.ndarray:
    """Resize a ``(h, w[, c])`` array to ``(height, width[, c])``."""
    if width <= 0 or height <= 0:
        raise ValueError(f"target size must be positive, got {width}x{height}")
    if interpolation not in ("nearest", "bilinear"):
        raise ValueError(f"unknown interpolation {interpolation!r}")
    src_h, src_w = arr.shape[:2]
    if (src_h, src_w) == (height, width):
        return arr.copy()

    if interpolation == "nearest":
        rows = _nearest_indices(src_h, height)
        cols = _nearest_indices(src_w, width)
        if accel.fast_paths_enabled():
            return arr.take(rows, axis=0).take(cols, axis=1)
        return arr[np.ix_(rows, cols)] if arr.ndim == 2 else arr[rows][:, cols]

    # bilinear
    out_dtype = arr.dtype
    a = arr.astype(np.float64)
    ys = (np.arange(height) + 0.5) * (src_h / height) - 0.5
    xs = (np.arange(width) + 0.5) * (src_w / width) - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)
    y0 = np.floor(ys).astype(np.int64)
    x0 = np.floor(xs).astype(np.int64)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, np.newaxis]
    wx = (xs - x0)[np.newaxis, :]
    if arr.ndim == 3:
        wy = wy[..., np.newaxis]
        wx = wx[..., np.newaxis]

    top = a[y0][:, x0] * (1 - wx) + a[y0][:, x1] * wx
    bottom = a[y1][:, x0] * (1 - wx) + a[y1][:, x1] * wx
    out = top * (1 - wy) + bottom * wy
    if np.issubdtype(out_dtype, np.integer):
        return np.clip(np.rint(out), 0, 255).astype(out_dtype)
    return out.astype(out_dtype)


def resize(image: Image, width: int, height: int, interpolation: str = "nearest") -> Image:
    """Resize an :class:`Image` to ``width x height``.

    ``interpolation`` is ``'nearest'`` (the paper's choice) or ``'bilinear'``.
    """
    return Image(resize_array(image.pixels, width, height, interpolation))
