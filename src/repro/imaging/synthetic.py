"""Procedural textures for the synthetic corpus.

Retrieval categories in the paper differ precisely in their low-level
statistics (color distribution, texture energy, region structure), so the
synthetic scene elements here are built to have controllable versions of
those statistics: smooth noise fields, stripes, checkerboards, and grass-like
high-frequency texture.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.filters import convolve2d, gaussian_kernel

__all__ = [
    "smooth_noise",
    "stripes",
    "checkerboard",
    "grass_texture",
    "halftone_dots",
]


def smooth_noise(
    width: int, height: int, sigma: float, rng: np.random.Generator, lo: float = 0.0, hi: float = 255.0
) -> np.ndarray:
    """Gaussian-smoothed white noise rescaled into [lo, hi]."""
    field = rng.normal(0.0, 1.0, (height, width))
    if sigma > 0:
        field = convolve2d(field, gaussian_kernel(sigma))
    fmin, fmax = field.min(), field.max()
    if fmax - fmin < 1e-12:
        return np.full((height, width), (lo + hi) / 2.0)
    return lo + (field - fmin) * (hi - lo) / (fmax - fmin)


def stripes(
    width: int, height: int, period: int, angle_deg: float = 0.0, lo: float = 0.0, hi: float = 255.0
) -> np.ndarray:
    """Sinusoidal stripes with the given pixel period and orientation."""
    if period <= 0:
        raise ValueError("period must be positive")
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    theta = np.deg2rad(angle_deg)
    phase = (xs * np.cos(theta) + ys * np.sin(theta)) * (2 * np.pi / period)
    wave = (np.sin(phase) + 1.0) / 2.0
    return lo + wave * (hi - lo)


def checkerboard(width: int, height: int, cell: int, lo: float = 0.0, hi: float = 255.0) -> np.ndarray:
    """Checkerboard with ``cell``-pixel squares."""
    if cell <= 0:
        raise ValueError("cell must be positive")
    ys, xs = np.mgrid[0:height, 0:width]
    board = ((xs // cell) + (ys // cell)) % 2
    return lo + board.astype(np.float64) * (hi - lo)


def grass_texture(width: int, height: int, rng: np.random.Generator) -> np.ndarray:
    """High-frequency vertically-correlated texture (sports-field grass)."""
    base = rng.normal(0.0, 1.0, (height, width))
    vertical = np.array([[0.25], [0.5], [0.25]])
    field = convolve2d(base, vertical)
    field = convolve2d(field, vertical)
    fmin, fmax = field.min(), field.max()
    if fmax - fmin < 1e-12:
        return np.zeros((height, width))
    return (field - fmin) / (fmax - fmin) * 255.0


def halftone_dots(width: int, height: int, spacing: int, radius: int) -> np.ndarray:
    """A regular dot grid (cartoon print texture); dots are bright on dark."""
    if spacing <= 0 or radius < 0:
        raise ValueError("spacing must be positive and radius non-negative")
    out = np.zeros((height, width))
    ys, xs = np.mgrid[0:height, 0:width]
    cy = (ys % spacing) - spacing // 2
    cx = (xs % spacing) - spacing // 2
    out[cx**2 + cy**2 <= radius**2] = 255.0
    return out
