"""The :class:`Image` container and binary/ASCII netpbm + BMP codecs.

The paper stores key frames as ``ORD_Image`` BLOBs inside Oracle and moves
frames around as files produced by a "video to jpeg converter".  We need the
same ability to serialize frames into real bytes and read them back, without
any third-party imaging library.  PPM (P6/P3) and PGM (P5/P2) are simple,
lossless, and self-describing; BMP (24-bit uncompressed) is included because
it is the other ubiquitous no-compression format.
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

__all__ = [
    "Image",
    "ImageFormatError",
    "read_image",
    "write_image",
    "decode_image",
    "encode_ppm",
    "encode_pgm",
    "encode_bmp",
]


class ImageFormatError(ValueError):
    """Raised when encoded image bytes cannot be parsed."""


@dataclass(frozen=True)
class Image:
    """An 8-bit image: grayscale ``(h, w)`` or RGB ``(h, w, 3)``.

    The pixel array is always ``uint8``.  Instances are immutable value
    objects; operations return new images.
    """

    pixels: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.pixels)
        if arr.dtype != np.uint8:
            raise TypeError(f"Image pixels must be uint8, got {arr.dtype}")
        if arr.ndim == 2:
            pass
        elif arr.ndim == 3 and arr.shape[2] == 3:
            pass
        else:
            raise ValueError(
                f"Image must be (h, w) gray or (h, w, 3) RGB, got shape {arr.shape}"
            )
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError("Image must have nonzero width and height")
        # Freeze the buffer so the frozen dataclass is actually immutable.
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "pixels", arr)

    def gray(self) -> np.ndarray:
        """The BT.601 gray conversion, memoized (instances are immutable).

        Several extractors start from the same luminance plane; computing
        it once per image removes the repeated conversion from the query
        hot path.  The memo is part of this value object, not shared state.
        """
        from repro.imaging import accel
        from repro.imaging.color import rgb_to_gray

        if not accel.fast_paths_enabled():
            return rgb_to_gray(self.pixels)
        memo = self.__dict__.get("_gray_memo")
        if memo is None:
            memo = rgb_to_gray(self.pixels)
            memo.setflags(write=False)
            object.__setattr__(self, "_gray_memo", memo)
        return memo

    # -- basic geometry -----------------------------------------------------

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.pixels.shape

    @property
    def is_gray(self) -> bool:
        return self.pixels.ndim == 2

    @property
    def is_rgb(self) -> bool:
        return self.pixels.ndim == 3

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Image":
        """Build an image from any numeric array, clipping into [0, 255]."""
        a = np.asarray(arr)
        if a.dtype != np.uint8:
            a = np.clip(np.rint(a.astype(np.float64)), 0, 255).astype(np.uint8)
        return cls(a)

    @classmethod
    def blank(cls, width: int, height: int, color: Union[int, Tuple[int, int, int]] = 0) -> "Image":
        """A solid-color image. A scalar color makes a gray image."""
        if isinstance(color, tuple):
            arr = np.empty((height, width, 3), dtype=np.uint8)
            arr[:, :] = np.asarray(color, dtype=np.uint8)
        else:
            arr = np.full((height, width), int(color), dtype=np.uint8)
        return cls(arr)

    # -- conversions ----------------------------------------------------------

    def to_rgb(self) -> "Image":
        """Return an RGB view of this image (replicating a gray channel)."""
        if self.is_rgb:
            return self
        return Image(np.repeat(self.pixels[:, :, np.newaxis], 3, axis=2))

    def to_gray(self) -> "Image":
        """Return a grayscale image using the paper's luminance matrix.

        The paper combines bands with ``{{0.114, 0.587, 0.299, 0}}`` applied
        to (B, G, R) order -- i.e. ITU-R BT.601 luma.
        """
        if self.is_gray:
            return self
        from repro.imaging.color import rgb_to_gray

        return Image(rgb_to_gray(self.pixels))

    def astype_float(self) -> np.ndarray:
        """Pixels as float64 (a copy; safe to mutate)."""
        return self.pixels.astype(np.float64)

    # -- equality / hashing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Image):
            return NotImplemented
        return self.pixels.shape == other.pixels.shape and bool(
            np.array_equal(self.pixels, other.pixels)
        )

    def __hash__(self) -> int:
        return hash((self.pixels.shape, self.pixels.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "gray" if self.is_gray else "rgb"
        return f"Image({self.width}x{self.height} {kind})"

    # -- codecs -----------------------------------------------------------------

    def encode(self, fmt: str = "ppm") -> bytes:
        """Serialize to ``fmt`` in {'ppm', 'pgm', 'bmp'}."""
        fmt = fmt.lower()
        if fmt == "ppm":
            return encode_ppm(self)
        if fmt == "pgm":
            return encode_pgm(self)
        if fmt == "bmp":
            return encode_bmp(self)
        raise ValueError(f"unsupported image format: {fmt!r}")

    @classmethod
    def decode(cls, data: bytes) -> "Image":
        return decode_image(data)

    def save(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Write to ``path``; format chosen by extension (.ppm/.pgm/.bmp)."""
        ext = os.path.splitext(os.fspath(path))[1].lstrip(".").lower() or "ppm"
        with open(path, "wb") as fh:
            fh.write(self.encode(ext))


# ---------------------------------------------------------------------------
# netpbm (PPM/PGM) codec
# ---------------------------------------------------------------------------


def encode_ppm(image: Image) -> bytes:
    """Encode as binary PPM (P6). Gray images are expanded to RGB."""
    rgb = image.to_rgb()
    header = f"P6\n{rgb.width} {rgb.height}\n255\n".encode("ascii")
    return header + rgb.pixels.tobytes()


def encode_pgm(image: Image) -> bytes:
    """Encode as binary PGM (P5). RGB images are converted to gray."""
    gray = image.to_gray()
    header = f"P5\n{gray.width} {gray.height}\n255\n".encode("ascii")
    return header + gray.pixels.tobytes()


def _read_pnm_tokens(buf: io.BytesIO, count: int) -> list:
    """Read whitespace/comment-delimited header tokens from a netpbm stream."""
    tokens = []
    while len(tokens) < count:
        ch = buf.read(1)
        if not ch:
            raise ImageFormatError("truncated netpbm header")
        if ch in b" \t\r\n":
            continue
        if ch == b"#":
            while ch not in (b"\n", b""):
                ch = buf.read(1)
            continue
        token = bytearray(ch)
        while True:
            ch = buf.read(1)
            if not ch or ch in b" \t\r\n":
                break
            token += ch
        tokens.append(bytes(token))
    return tokens


def _decode_pnm(data: bytes) -> Image:
    magic = data[:2]
    buf = io.BytesIO(data[2:])
    try:
        width_b, height_b, maxval_b = _read_pnm_tokens(buf, 3)
        width, height, maxval = int(width_b), int(height_b), int(maxval_b)
    except ValueError as exc:
        raise ImageFormatError(f"bad netpbm header: {exc}") from exc
    if width <= 0 or height <= 0:
        raise ImageFormatError(f"bad netpbm dimensions {width}x{height}")
    if maxval != 255:
        raise ImageFormatError(f"only maxval=255 supported, got {maxval}")

    channels = 3 if magic in (b"P6", b"P3") else 1
    n = width * height * channels
    if magic in (b"P6", b"P5"):
        raw = buf.read(n)
        if len(raw) < n:
            raise ImageFormatError("truncated netpbm pixel data")
        arr = np.frombuffer(raw, dtype=np.uint8, count=n)
    else:  # ASCII P3/P2
        text = buf.read().split()
        if len(text) < n:
            raise ImageFormatError("truncated ASCII netpbm pixel data")
        arr = np.array([int(t) for t in text[:n]], dtype=np.uint8)
    if channels == 3:
        return Image(arr.reshape(height, width, 3))
    return Image(arr.reshape(height, width))


# ---------------------------------------------------------------------------
# BMP codec (24-bit uncompressed, bottom-up)
# ---------------------------------------------------------------------------

_BMP_FILE_HEADER = struct.Struct("<2sIHHI")
_BMP_INFO_HEADER = struct.Struct("<IiiHHIIiiII")


def encode_bmp(image: Image) -> bytes:
    """Encode as a 24-bit uncompressed Windows BMP (BGR, bottom-up rows)."""
    rgb = image.to_rgb()
    h, w = rgb.height, rgb.width
    row_size = (3 * w + 3) & ~3
    pixel_bytes = row_size * h
    offset = _BMP_FILE_HEADER.size + _BMP_INFO_HEADER.size
    file_header = _BMP_FILE_HEADER.pack(b"BM", offset + pixel_bytes, 0, 0, offset)
    info_header = _BMP_INFO_HEADER.pack(
        _BMP_INFO_HEADER.size, w, h, 1, 24, 0, pixel_bytes, 2835, 2835, 0, 0
    )
    bgr = rgb.pixels[::-1, :, ::-1]  # bottom-up rows, BGR channel order
    rows = np.zeros((h, row_size), dtype=np.uint8)
    rows[:, : 3 * w] = bgr.reshape(h, 3 * w)
    return file_header + info_header + rows.tobytes()


def _decode_bmp(data: bytes) -> Image:
    if len(data) < _BMP_FILE_HEADER.size + _BMP_INFO_HEADER.size:
        raise ImageFormatError("truncated BMP header")
    magic, _size, _r1, _r2, offset = _BMP_FILE_HEADER.unpack_from(data, 0)
    if magic != b"BM":
        raise ImageFormatError("not a BMP file")
    (
        hdr_size,
        width,
        height,
        _planes,
        bpp,
        compression,
        _img_size,
        _xppm,
        _yppm,
        _clr_used,
        _clr_imp,
    ) = _BMP_INFO_HEADER.unpack_from(data, _BMP_FILE_HEADER.size)
    if hdr_size < 40 or bpp != 24 or compression != 0:
        raise ImageFormatError("only 24-bit uncompressed BMP supported")
    flip = height > 0
    height = abs(height)
    row_size = (3 * width + 3) & ~3
    need = offset + row_size * height
    if len(data) < need:
        raise ImageFormatError("truncated BMP pixel data")
    rows = np.frombuffer(data, dtype=np.uint8, count=row_size * height, offset=offset)
    rows = rows.reshape(height, row_size)[:, : 3 * width].reshape(height, width, 3)
    rgb = rows[:, :, ::-1]
    if flip:
        rgb = rgb[::-1]
    return Image(np.ascontiguousarray(rgb))


# ---------------------------------------------------------------------------
# dispatch
# ---------------------------------------------------------------------------


def decode_image(data: bytes) -> Image:
    """Decode PPM/PGM (binary or ASCII) or 24-bit BMP bytes."""
    if len(data) < 2:
        raise ImageFormatError("image data too short")
    magic = data[:2]
    if magic in (b"P6", b"P5", b"P3", b"P2"):
        return _decode_pnm(data)
    if magic == b"BM":
        return _decode_bmp(data)
    raise ImageFormatError(f"unrecognized image magic {magic!r}")


def read_image(path: Union[str, "os.PathLike[str]"]) -> Image:
    """Read an image file (PPM/PGM/BMP)."""
    with open(path, "rb") as fh:
        return decode_image(fh.read())


def write_image(image: Image, path: Union[str, "os.PathLike[str]"]) -> None:
    """Write ``image`` to ``path``; format chosen by extension."""
    image.save(path)
