"""A deterministic process-pool ``map`` with graceful serial fallback.

The feature extractors are pure CPU-bound NumPy/Python code, so threads
buy nothing under the GIL; processes do.  :class:`WorkerPool` wraps
``concurrent.futures.ProcessPoolExecutor`` with the three guarantees the
pipeline needs:

1. **Deterministic ordering** -- results come back in input order, so a
   parallel ingest produces byte-identical feature strings to a serial
   one.
2. **Graceful fallback** -- ``workers == 1``, a single-item batch, an
   unpicklable task, or a broken pool all degrade to the plain serial
   loop instead of erroring.
3. **Chunked dispatch** -- items are shipped in chunks so per-task IPC
   overhead does not swamp short tasks.

Exceptions raised *by the task function itself* always propagate: only
infrastructure failures (pickling, dead workers) trigger the fallback.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.obs import NULL_OBS, Obs, log
from repro.resilience import (
    NULL_POLICIES,
    CircuitOpenError,
    FaultInjected,
    ResiliencePolicies,
)

__all__ = ["WorkerPool", "PoolTask", "parallel_map", "resolve_workers"]

_log = log.get_logger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: environment override for the auto worker count (`workers=0` in config)
WORKERS_ENV_VAR = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn a ``workers`` knob into an effective worker count.

    ``None`` or ``0`` means *auto*: the ``REPRO_WORKERS`` environment
    variable if set, else the machine's CPU count.  Negative counts are
    rejected; the result is always >= 1.
    """
    if workers is None or workers == 0:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (0 = auto), got {workers}")
    return max(1, workers)


def _is_picklable(obj: object) -> bool:
    """Whether ``obj`` survives the trip to a worker process."""
    try:
        pickle.dumps(obj)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


class PoolTask:
    """Handle for one :meth:`WorkerPool.submit` call.

    ``result()`` blocks until the task finishes and returns its value.
    Exceptions raised by the task function propagate unchanged;
    infrastructure failures (a dead worker process, an unpicklable
    result) are redone in-process, mirroring :meth:`WorkerPool.map`'s
    fallback semantics.  A handle created without a future runs the task
    in-process, lazily, on the first ``result()`` call -- so a caller
    that fanned several submits out still overlaps the healthy ones.
    """

    __slots__ = (
        "_pool", "_fn", "_args", "_future", "_breaker", "_done", "_value", "_t0",
    )

    def __init__(self, pool: "WorkerPool", fn, args, future=None, breaker=None):
        self._pool = pool
        self._fn = fn
        self._args = args
        self._future = future
        self._breaker = breaker
        self._done = False
        self._value = None
        self._t0 = time.perf_counter()

    @property
    def inline(self) -> bool:
        """Whether this task runs (or ran) in-process instead of a worker."""
        return self._future is None

    def result(self):
        """The task's return value (blocks until available)."""
        if self._done:
            return self._value
        if self._future is None:
            mode = "inline"
            value = self._fn(*self._args)
        else:
            mode = "parallel"
            try:
                value = self._future.result()
                if self._breaker is not None:
                    self._breaker.record_success()
            except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
                # the worker died or the result refused to pickle; the
                # work itself is still valid, so redo it in-process
                if self._breaker is not None:
                    self._breaker.record_failure()
                    self._pool._policies.note_fallback("pool_serial")
                self._pool.close()
                self._pool._m_fallbacks.labels(reason="broken_pool").inc()
                _log.warning(
                    "pool.task_redone_inline",
                    error=f"{type(exc).__name__}: {exc}",
                )
                self._future = None
                mode = "redone"
                value = self._fn(*self._args)
        self._pool._m_task_seconds.labels(mode=mode).observe(
            time.perf_counter() - self._t0
        )
        self._value = value
        self._done = True
        return value


class WorkerPool:
    """Order-preserving chunked map over a lazily-created process pool.

    The executor is only spawned on the first parallel ``map`` call, so a
    pool configured with ``workers=1`` (the default everywhere) costs
    nothing.  Pools are reusable across calls; ``close()`` (or use as a
    context manager) tears the executor down.
    """

    def __init__(self, workers: int = 1, chunk_size: Optional[int] = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._executor: Optional[ProcessPoolExecutor] = None
        self._initializer: Optional[Callable[..., None]] = None
        self._initargs: tuple = ()
        self._policies = NULL_POLICIES
        self.attach_obs(NULL_OBS)

    def set_initializer(
        self, initializer: Optional[Callable[..., None]], initargs: tuple = ()
    ) -> None:
        """Run ``initializer(*initargs)`` in every worker process at spawn.

        The snapshot layer uses this to hand workers the snapshot path so
        they ``np.memmap`` the shared index file instead of inheriting a
        copy of the parent's matrices.  Takes effect on the *next*
        executor spawn; an already-running executor is torn down so stale
        workers can't outlive a changed initializer.
        """
        if self._executor is not None:
            self.close()
        self._initializer = initializer
        self._initargs = tuple(initargs)

    def attach_obs(self, obs: Obs) -> None:
        """Bind this pool's dispatch metrics to an observability facade."""
        obs.gauge(
            "repro_pool_workers", "Configured worker processes."
        ).set(self.workers)
        self._m_queue_depth = obs.gauge(
            "repro_pool_queue_depth", "Items queued in the in-flight map call."
        )
        self._m_map_items = obs.histogram(
            "repro_pool_map_items",
            "Batch size per map call.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0),
        )
        self._m_map_seconds = obs.histogram(
            "repro_pool_map_seconds",
            "Wall time per map call (chunked dispatch incl. result gather).",
            labelnames=("mode",),
        )
        self._m_fallbacks = obs.counter(
            "repro_pool_fallbacks_total",
            "Parallel map calls that degraded to the serial loop.",
            labelnames=("reason",),
        )
        self._m_submits = obs.counter(
            "repro_pool_submits_total",
            "Single-task submissions, by dispatch mode.",
            labelnames=("mode",),
        )
        self._m_task_seconds = obs.histogram(
            "repro_pool_task_seconds",
            "Submit-to-result wall time per single task, by dispatch mode.",
            labelnames=("mode",),
            buckets=obs.latency_buckets,
        )

    def attach_resilience(self, policies: ResiliencePolicies) -> None:
        """Route parallel dispatch through ``policies``' pool breaker.

        While the breaker is open every map call takes the serial loop
        directly (reason ``breaker_open``) instead of re-touching broken
        pool infrastructure; the half-open probe lets one call test it.
        The ``pool.map`` fault point fires only in the parallel path.
        """
        self._policies = policies

    # -- lifecycle -----------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            kwargs = {}
            if self._initializer is not None:
                kwargs = {
                    "initializer": self._initializer,
                    "initargs": self._initargs,
                }
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, **kwargs
            )
        return self._executor

    @property
    def active(self) -> bool:
        """Whether a live executor (with worker processes) currently exists."""
        return self._executor is not None

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the one operation ----------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """``[fn(x) for x in items]``, fanned out when it can be.

        Results are always in input order.  Falls back to the serial loop
        when the pool is serial, the batch is trivial, or the task cannot
        be shipped to workers; task exceptions propagate unchanged.
        """
        materialized = list(items)
        self._m_map_items.observe(len(materialized))
        t0 = time.perf_counter()
        if self.workers == 1 or len(materialized) <= 1:
            out = [fn(x) for x in materialized]
            self._m_map_seconds.labels(mode="serial").observe(
                time.perf_counter() - t0
            )
            return out
        if not (_is_picklable(fn) and _is_picklable(materialized[0])):
            self._m_fallbacks.labels(reason="unpicklable").inc()
            out = [fn(x) for x in materialized]
            self._m_map_seconds.labels(mode="serial").observe(
                time.perf_counter() - t0
            )
            return out
        breaker = self._policies.pool_breaker if self._policies.enabled else None
        if breaker is not None:
            try:
                breaker.guard()
            except CircuitOpenError:
                # open breaker: don't re-touch known-broken infrastructure
                self._m_fallbacks.labels(reason="breaker_open").inc()
                self._policies.note_fallback("pool_serial")
                out = [fn(x) for x in materialized]
                self._m_map_seconds.labels(mode="serial").observe(
                    time.perf_counter() - t0
                )
                return out
        chunk = self.chunk_size or max(
            1, -(-len(materialized) // (self.workers * 4))
        )
        self._m_queue_depth.set(len(materialized))
        try:
            self._policies.fire("pool.map")
            executor = self._ensure_executor()
            out = list(executor.map(fn, materialized, chunksize=chunk))
            if breaker is not None:
                breaker.record_success()
            self._m_map_seconds.labels(mode="parallel").observe(
                time.perf_counter() - t0
            )
            return out
        except (BrokenProcessPool, pickle.PicklingError, OSError, FaultInjected) as exc:
            # infrastructure died (or a result refused to pickle); the
            # work itself is still valid, so redo it in-process
            if breaker is not None:
                breaker.record_failure()
                self._policies.note_fallback("pool_serial")
            self.close()
            self._m_fallbacks.labels(reason="broken_pool").inc()
            _log.warning(
                "pool.map_fallback_serial",
                error=f"{type(exc).__name__}: {exc}",
            )
            out = [fn(x) for x in materialized]
            self._m_map_seconds.labels(mode="serial").observe(
                time.perf_counter() - t0
            )
            return out
        finally:
            self._m_queue_depth.set(0)

    def submit(self, fn: Callable[..., R], *args: object) -> PoolTask:
        """Dispatch one long-lived task to a worker process.

        Unlike :meth:`map`, a ``workers == 1`` pool still ships the task
        to its single *persistent* worker process -- that is the point:
        a caller pins per-process state via :meth:`set_initializer`
        (e.g. a memory-mapped shard snapshot) and keeps submitting
        queries to it without re-forking.  The serial fallback only
        triggers for unpicklable tasks, an open pool breaker, or broken
        infrastructure; task exceptions always propagate from the
        handle's ``result()``.  The ``pool.map`` fault point covers this
        dispatch path too.
        """
        if not (_is_picklable(fn) and all(_is_picklable(a) for a in args)):
            self._m_fallbacks.labels(reason="unpicklable").inc()
            self._m_submits.labels(mode="inline").inc()
            return PoolTask(self, fn, args)
        breaker = self._policies.pool_breaker if self._policies.enabled else None
        if breaker is not None:
            try:
                breaker.guard()
            except CircuitOpenError:
                self._m_fallbacks.labels(reason="breaker_open").inc()
                self._policies.note_fallback("pool_serial")
                self._m_submits.labels(mode="inline").inc()
                return PoolTask(self, fn, args)
        try:
            self._policies.fire("pool.map")
            future = self._ensure_executor().submit(fn, *args)
        except (BrokenProcessPool, pickle.PicklingError, OSError, FaultInjected) as exc:
            if breaker is not None:
                breaker.record_failure()
                self._policies.note_fallback("pool_serial")
            self.close()
            self._m_fallbacks.labels(reason="broken_pool").inc()
            _log.warning(
                "pool.submit_fallback_inline",
                error=f"{type(exc).__name__}: {exc}",
            )
            self._m_submits.labels(mode="inline").inc()
            return PoolTask(self, fn, args)
        self._m_submits.labels(mode="parallel").inc()
        return PoolTask(self, fn, args, future=future, breaker=breaker)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """One-shot :meth:`WorkerPool.map` (pool created and torn down here)."""
    with WorkerPool(workers=workers, chunk_size=chunk_size) as pool:
        return pool.map(fn, items)
