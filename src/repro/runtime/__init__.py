"""Execution layer: process-pool fan-out for the ingest/search hot paths.

``repro.runtime`` owns *how* work is spread over cores so the pipeline
layers (`core.ingest`, `core.search`) only say *what* to compute.  The
contract is deliberately narrow: an order-preserving chunked ``map`` that
degrades to the plain serial loop whenever parallelism cannot help
(one worker, one item) or cannot work (unpicklable task, dead pool).
"""

from repro.runtime.pool import WorkerPool, parallel_map, resolve_workers

__all__ = ["WorkerPool", "parallel_map", "resolve_workers"]
