"""Execution layer: process-pool fan-out for the ingest/search hot paths.

``repro.runtime`` owns *how* work is spread over cores so the pipeline
layers (`core.ingest`, `core.search`) only say *what* to compute.  The
contract is deliberately narrow: an order-preserving chunked ``map`` that
degrades to the plain serial loop whenever parallelism cannot help
(one worker, one item) or cannot work (unpicklable task, dead pool),
plus a ``submit``/``result`` pair for long-lived tasks pinned to
persistent worker processes (the sharded scatter-gather path).
"""

from repro.runtime.pool import PoolTask, WorkerPool, parallel_map, resolve_workers

__all__ = ["PoolTask", "WorkerPool", "parallel_map", "resolve_workers"]
