"""The versioned binary snapshot layout (mmap-able index image).

A snapshot is one file holding everything a reader needs to serve
queries without touching SQL: the stacked float feature matrices, the
row-id table, the range-index bucket arrays, and (optionally) the IVF
coarse-quantizer state.  Readers ``np.memmap`` the file read-only, so a
replica reaches first-query readiness in milliseconds and co-located
workers share page cache instead of duplicating the matrices per
process.

Layout (all integers little-endian)::

    [ 0: 8)   magic           b"RSNAP1\\r\\n"
    [ 8:12)   format version  u32  (currently 1)
    [12:16)   endian marker   u32  0x01020304 (catches byte-order swaps)
    [16:20)   header crc32    u32  (of the header JSON bytes)
    [20:28)   header length   u64
    [28:  )   header JSON     utf-8
    ...       sections        raw array bytes, each 64-byte aligned

The header JSON carries ``meta`` (writer-defined: generations, frame
metadata, video table) and ``sections`` -- a table of
``{name, offset, nbytes, dtype, shape, crc32}`` entries describing every
array.  Section dtypes are always little-endian (``<f8``, ``<i8``), so a
snapshot written on any host reads identically everywhere.

Writes are atomic: the file is assembled in a temporary sibling and
``os.replace``-d into place, so a crash mid-write can never tear the
live snapshot.  Opening validates the preamble, the header checksum and
the section table against the real file size; the (expensive) per-section
checksums are left to :meth:`Snapshot.verify`, which ``repro snapshot
verify`` runs -- paying a full file read on every open would defeat the
instant cold start the format exists for.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = [
    "MAGIC",
    "VERSION",
    "Snapshot",
    "SnapshotError",
    "CorruptSnapshotError",
    "SnapshotVersionError",
    "write_snapshot",
]

MAGIC = b"RSNAP1\r\n"
VERSION = 1
_ENDIAN_MARKER = 0x01020304
_PREAMBLE = struct.Struct("<8sIII Q".replace(" ", ""))
_ALIGN = 64


class SnapshotError(Exception):
    """Base error for snapshot reading/writing."""


class CorruptSnapshotError(SnapshotError):
    """Checksum mismatch, truncation, or malformed structure."""


class SnapshotVersionError(SnapshotError):
    """Unknown format version or wrong byte order."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _little_endian(array: np.ndarray) -> np.ndarray:
    """A C-contiguous little-endian view/copy of ``array``."""
    arr = np.ascontiguousarray(array)
    dt = arr.dtype.newbyteorder("<")
    if arr.dtype != dt:
        arr = arr.astype(dt)
    return arr


def write_snapshot(
    path: Union[str, "os.PathLike[str]"],
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, object],
) -> None:
    """Atomically write ``arrays`` + ``meta`` as one snapshot file.

    Section order follows ``arrays``' iteration order.  The temporary
    sibling is fsynced before the rename, so after ``write_snapshot``
    returns the snapshot at ``path`` is either the old image or the
    complete new one -- never a torn mix.
    """
    path = os.fspath(path)
    prepared: List[Tuple[str, np.ndarray]] = [
        (name, _little_endian(arr)) for name, arr in arrays.items()
    ]
    # lay the sections out before rendering the header: the header length
    # shifts every offset, so resolve with a fixed-point on the JSON size
    sections: List[Dict[str, object]] = [
        {
            "name": name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "nbytes": int(arr.nbytes),
            "crc32": zlib.crc32(arr.tobytes()) & 0xFFFFFFFF,
        }
        for name, arr in prepared
    ]

    def render(offsets: List[int], file_size: int) -> bytes:
        table = [dict(s, offset=off) for s, off in zip(sections, offsets)]
        header = {"meta": dict(meta), "sections": table, "file_size": file_size}
        return json.dumps(header, sort_keys=True).encode("utf-8")

    offsets = [0] * len(prepared)
    header_bytes = render(offsets, 0)
    for _ in range(8):  # converges in 2 passes; JSON length is stable after 1
        cursor = _align(_PREAMBLE.size + len(header_bytes))
        offsets = []
        for _name, arr in prepared:
            offsets.append(cursor)
            cursor = _align(cursor + arr.nbytes)
        file_size = cursor
        new_header = render(offsets, file_size)
        if len(new_header) == len(header_bytes):
            header_bytes = new_header
            break
        header_bytes = new_header
    else:  # pragma: no cover - the fixed point always settles
        raise SnapshotError("snapshot header layout did not converge")

    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(
            _PREAMBLE.pack(
                MAGIC,
                VERSION,
                _ENDIAN_MARKER,
                zlib.crc32(header_bytes) & 0xFFFFFFFF,
                len(header_bytes),
            )
        )
        fh.write(header_bytes)
        pos = _PREAMBLE.size + len(header_bytes)
        for (_name, arr), offset in zip(prepared, offsets):
            fh.write(b"\0" * (offset - pos))
            fh.write(arr.tobytes())
            pos = offset + arr.nbytes
        fh.write(b"\0" * (file_size - pos))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class Snapshot:
    """A read-only, memory-mapped snapshot file.

    ``sections[name]`` yields a zero-copy ``np.ndarray`` view into the
    mapping; the OS pages matrix bytes in on first touch and shares them
    across every process mapping the same file.  Views stay valid as
    long as this object (or any view) is referenced.
    """

    def __init__(self, path: str, mm: np.memmap, header: Dict[str, object]):
        self.path = path
        self._mm: Optional[np.memmap] = mm
        self.meta: Dict[str, object] = dict(header.get("meta", {}))
        self._table: Dict[str, Dict[str, object]] = {
            str(s["name"]): s for s in header.get("sections", [])
        }
        self.file_size = int(header.get("file_size", 0))

    # -- opening ---------------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, "os.PathLike[str]"]) -> "Snapshot":
        """Map and validate a snapshot (cheap: preamble + header only).

        Raises ``FileNotFoundError`` when absent,
        :class:`SnapshotVersionError` for an unknown version or foreign
        byte order, :class:`CorruptSnapshotError` for a damaged preamble,
        header, or section table.
        """
        path = os.fspath(path)
        size = os.path.getsize(path)
        if size < _PREAMBLE.size:
            raise CorruptSnapshotError(f"{path}: truncated preamble ({size} bytes)")
        mm = np.memmap(path, dtype=np.uint8, mode="r")
        magic, version, endian, header_crc, header_len = _PREAMBLE.unpack_from(
            mm[: _PREAMBLE.size].tobytes()
        )
        if magic != MAGIC:
            raise CorruptSnapshotError(f"{path}: bad magic {magic!r}")
        if version != VERSION:
            raise SnapshotVersionError(
                f"{path}: format version {version}, this reader supports {VERSION}"
            )
        if endian != _ENDIAN_MARKER:
            raise SnapshotVersionError(
                f"{path}: endianness marker 0x{endian:08x} != 0x{_ENDIAN_MARKER:08x}"
            )
        if _PREAMBLE.size + header_len > size:
            raise CorruptSnapshotError(f"{path}: header extends past end of file")
        header_bytes = mm[_PREAMBLE.size : _PREAMBLE.size + header_len].tobytes()
        if zlib.crc32(header_bytes) & 0xFFFFFFFF != header_crc:
            raise CorruptSnapshotError(f"{path}: header checksum mismatch")
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptSnapshotError(f"{path}: unreadable header: {exc}") from exc
        snap = cls(path, mm, header)
        if snap.file_size != size:
            raise CorruptSnapshotError(
                f"{path}: header says {snap.file_size} bytes, file has {size}"
            )
        for name in snap.section_names():
            snap._entry(name)  # validates dtype/bounds for every section
        return snap

    # -- access ----------------------------------------------------------------

    def section_names(self) -> List[str]:
        return list(self._table)

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def _entry(self, name: str) -> Dict[str, object]:
        try:
            entry = self._table[name]
        except KeyError:
            raise KeyError(f"snapshot has no section {name!r}") from None
        dtype = np.dtype(str(entry["dtype"]))
        if dtype.byteorder not in ("<", "|", "="):
            raise SnapshotVersionError(
                f"{self.path}: section {name!r} has non-little-endian "
                f"dtype {entry['dtype']!r}"
            )
        offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
        shape = tuple(int(d) for d in entry["shape"])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if shape else dtype.itemsize
        if int(np.prod(shape, dtype=np.int64)) * dtype.itemsize != nbytes:
            raise CorruptSnapshotError(
                f"{self.path}: section {name!r} shape {shape} x {dtype} "
                f"!= {nbytes} bytes (expected {expected})"
            )
        if offset < 0 or offset + nbytes > self.file_size:
            raise CorruptSnapshotError(
                f"{self.path}: section {name!r} [{offset}, {offset + nbytes}) "
                f"lies outside the {self.file_size}-byte file"
            )
        return entry

    def section(self, name: str) -> np.ndarray:
        """A zero-copy read-only array view of one section."""
        if self._mm is None:
            raise SnapshotError(f"{self.path}: snapshot is closed")
        entry = self._entry(name)
        dtype = np.dtype(str(entry["dtype"]))
        offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
        shape = tuple(int(d) for d in entry["shape"])
        return self._mm[offset : offset + nbytes].view(dtype).reshape(shape)

    # -- integrity -------------------------------------------------------------

    def verify(self) -> List[str]:
        """Recompute every section checksum; returns the failing names.

        This reads the whole file (unlike :meth:`open`), so it belongs in
        ``repro snapshot verify`` and CI, not on the serving path.
        """
        failures = []
        for name in self.section_names():
            entry = self._entry(name)
            data = self.section(name)
            if zlib.crc32(data.tobytes()) & 0xFFFFFFFF != int(entry["crc32"]):
                failures.append(name)
        return failures

    def info(self) -> Dict[str, object]:
        """Header summary for ``repro snapshot info``."""
        return {
            "path": self.path,
            "version": VERSION,
            "file_size": self.file_size,
            "meta": dict(self.meta),
            "sections": [
                {
                    "name": name,
                    "dtype": str(entry["dtype"]),
                    "shape": list(entry["shape"]),
                    "nbytes": int(entry["nbytes"]),
                }
                for name, entry in self._table.items()
            ],
        }

    def close(self) -> None:
        """Drop this object's reference to the mapping.

        Existing section views keep their own references, so they stay
        valid; the OS unmaps once the last view is garbage collected.
        """
        self._mm = None
