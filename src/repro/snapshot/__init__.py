"""On-disk snapshot format: an mmap-able index image plus its WAL.

This package owns only the bytes -- the versioned binary layout
(:mod:`repro.snapshot.format`) and the checksummed JSON-lines log that
rides beside it (:mod:`repro.snapshot.wal`).  Translating a
:class:`~repro.core.store.FeatureStore` and IVF index to and from those
bytes lives in :mod:`repro.core.snapshots`, keeping this layer free of
core imports so the analysis layer DAG stays acyclic.
"""

from repro.snapshot.format import (
    MAGIC,
    VERSION,
    CorruptSnapshotError,
    Snapshot,
    SnapshotError,
    SnapshotVersionError,
    write_snapshot,
)
from repro.snapshot.wal import (
    WAL_MAGIC,
    CorruptWalError,
    StaleWalError,
    WalWriter,
    read_wal,
    remove_wal,
    wal_depth,
    wal_path_for,
)

__all__ = [
    "MAGIC",
    "VERSION",
    "WAL_MAGIC",
    "Snapshot",
    "SnapshotError",
    "CorruptSnapshotError",
    "SnapshotVersionError",
    "CorruptWalError",
    "StaleWalError",
    "WalWriter",
    "write_snapshot",
    "read_wal",
    "remove_wal",
    "wal_depth",
    "wal_path_for",
]
