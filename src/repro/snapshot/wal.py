"""The store-level write-ahead log riding alongside a snapshot.

Rewriting a multi-megabyte snapshot on every ingest would turn the
mmap win into a write amplification loss, so mutations between
compactions append to a small JSON-lines WAL instead.  A reader opens
the snapshot, then replays the WAL on top; compaction folds the WAL
into a fresh snapshot and truncates it.

Each line is ``"%08x %s\\n" % (crc32(payload), payload)`` where payload
is one JSON object.  The first record is a header::

    {"wal": "RSWAL1", "base_generation": G, "base_structure_generation": S}

binding the log to the snapshot it extends -- a WAL whose base
generations disagree with the snapshot's header is stale (the snapshot
was rewritten underneath it) and must be discarded.  Subsequent records
carry ``seq`` (1, 2, 3, ...) and ``op``; a gap or repeat means the file
was spliced and is treated as corruption.

A torn **final** line (crash mid-append) is expected and silently
dropped: the record never committed.  Damage anywhere *before* the tail
is real corruption and raises :class:`CorruptWalError`.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional, Tuple, Union

from repro.snapshot.format import CorruptSnapshotError

__all__ = [
    "WAL_MAGIC",
    "CorruptWalError",
    "StaleWalError",
    "WalWriter",
    "read_wal",
    "wal_path_for",
    "remove_wal",
    "wal_depth",
]

WAL_MAGIC = "RSWAL1"


class CorruptWalError(CorruptSnapshotError):
    """A WAL record before the tail failed its checksum or sequence check."""


class StaleWalError(CorruptSnapshotError):
    """The WAL extends a different snapshot generation than the one on disk."""


def _encode(payload: Dict[str, object]) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return ("%08x %s\n" % (zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, body)).encode(
        "utf-8"
    )


def _decode(line: bytes) -> Optional[Dict[str, object]]:
    """One parsed record, or ``None`` when the line is torn/invalid."""
    try:
        text = line.decode("utf-8")
        crc_hex, _, body = text.partition(" ")
        if len(crc_hex) != 8 or not body:
            return None
        if int(crc_hex, 16) != zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF:
            return None
        record = json.loads(body)
    except (UnicodeDecodeError, ValueError):
        return None
    return record if isinstance(record, dict) else None


def read_wal(
    path: Union[str, "os.PathLike[str]"],
    base_generation: int,
    base_structure_generation: int,
) -> List[Dict[str, object]]:
    """Parse and validate the WAL at ``path``; returns the entry records.

    An absent or empty WAL is fine (no mutations since the snapshot) and
    returns ``[]``.  Raises :class:`StaleWalError` when the log belongs
    to another snapshot generation, :class:`CorruptWalError` for damage
    anywhere except a torn final line.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except FileNotFoundError:
        return []
    if not raw:
        return []
    lines = raw.split(b"\n")
    # a well-formed file ends with "\n", leaving one empty trailing chunk;
    # anything else in the last slot is a torn append and is dropped
    torn_tail = lines[-1] != b""
    lines = lines[:-1]
    records = []
    for i, line in enumerate(lines):
        record = _decode(line)
        if record is None:
            if torn_tail is False and i == len(lines) - 1:
                # final newline present but the line itself is damaged:
                # could be a crash between write and flush -- treat as torn
                break
            raise CorruptWalError(f"{path}: bad record at line {i + 1}")
        records.append(record)
    if not records:
        return []
    header = records[0]
    if header.get("wal") != WAL_MAGIC:
        raise CorruptWalError(f"{path}: missing WAL header record")
    if (
        int(header.get("base_generation", -1)) != base_generation
        or int(header.get("base_structure_generation", -1)) != base_structure_generation
    ):
        raise StaleWalError(
            f"{path}: WAL base generation "
            f"({header.get('base_generation')}, "
            f"{header.get('base_structure_generation')}) does not match snapshot "
            f"({base_generation}, {base_structure_generation})"
        )
    entries = []
    for i, record in enumerate(records[1:], start=1):
        if int(record.get("seq", -1)) != i:
            raise CorruptWalError(
                f"{path}: sequence gap at record {i} (got seq={record.get('seq')})"
            )
        entries.append(record)
    return entries


class WalWriter:
    """Appends checksummed records; one writer per store process.

    Creating a writer on a fresh path writes the header record binding
    it to ``(base_generation, base_structure_generation)``.  On an
    existing valid WAL for the same base, appends continue the sequence.
    Every append flushes and fsyncs, so an acknowledged mutation
    survives a crash.
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        base_generation: int,
        base_structure_generation: int,
    ):
        self.path = os.fspath(path)
        self.base_generation = base_generation
        self.base_structure_generation = base_structure_generation
        existing = read_wal(self.path, base_generation, base_structure_generation)
        self._seq = len(existing)
        if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
            header = {
                "wal": WAL_MAGIC,
                "base_generation": base_generation,
                "base_structure_generation": base_structure_generation,
            }
            with open(self.path, "wb") as fh:
                fh.write(_encode(header))
                fh.flush()
                os.fsync(fh.fileno())

    @property
    def depth(self) -> int:
        """Entries appended since the base snapshot (compaction pressure)."""
        return self._seq

    def append(self, op: str, payload: Dict[str, object]) -> int:
        """Durably append one mutation record; returns its sequence number."""
        self._seq += 1
        record: Dict[str, object] = {"seq": self._seq, "op": op}
        record.update(payload)
        with open(self.path, "ab") as fh:
            fh.write(_encode(record))
            fh.flush()
            os.fsync(fh.fileno())
        return self._seq


def wal_path_for(snapshot_path: Union[str, "os.PathLike[str]"]) -> str:
    """The conventional WAL location next to a snapshot file."""
    return os.fspath(snapshot_path) + ".wal"


def remove_wal(snapshot_path: Union[str, "os.PathLike[str]"]) -> None:
    """Delete the WAL (after a successful compaction)."""
    try:
        os.remove(wal_path_for(snapshot_path))
    except FileNotFoundError:
        pass


def wal_depth(
    snapshot_path: Union[str, "os.PathLike[str]"],
    base: Tuple[int, int],
) -> int:
    """Entry count of the WAL next to ``snapshot_path`` (0 if absent/stale)."""
    try:
        return len(read_wal(wal_path_for(snapshot_path), base[0], base[1]))
    except CorruptSnapshotError:
        return 0
