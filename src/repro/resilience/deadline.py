"""Per-request time budgets, propagated through ``contextvars``.

A caller arms a budget once at the request boundary::

    with deadline_scope(0.5):
        system.search(image)

and every stage boundary inside ingest and search calls
:func:`check_deadline`, which raises :class:`DeadlineExceeded` as soon as
the budget is spent.  The context variable propagates through nested
calls (and into threads started with ``contextvars.copy_context``), so no
plumbing argument is threaded through the pipeline.  When no deadline is
armed, the check is a single context-variable read.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator, Optional

from repro.resilience.errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "armed_deadline",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
]


class Deadline:
    """One armed time budget (monotonic-clock based)."""

    __slots__ = ("budget", "_t0", "_clock")

    def __init__(self, budget: float, clock: Callable[[], float] = time.monotonic):
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = float(budget)
        self._clock = clock
        self._t0 = clock()

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        elapsed = self.elapsed()
        if elapsed >= self.budget:
            raise DeadlineExceeded(stage, self.budget, elapsed)


_CURRENT: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_resilience_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The innermost armed deadline, or None."""
    return _CURRENT.get()


@contextlib.contextmanager
def deadline_scope(
    budget: Optional[float], clock: Callable[[], float] = time.monotonic
) -> Iterator[Optional[Deadline]]:
    """Arm a deadline for the duration of the ``with`` block.

    ``budget=None`` is a no-op scope (so callers can pass an optional
    config knob straight through).  Nested scopes shadow outer ones; the
    outer deadline is restored on exit.
    """
    if budget is None:
        yield _CURRENT.get()
        return
    token = _CURRENT.set(Deadline(budget, clock=clock))
    try:
        yield _CURRENT.get()
    finally:
        _CURRENT.reset(token)


@contextlib.contextmanager
def armed_deadline(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install an *existing* :class:`Deadline` for the ``with`` block.

    Unlike :func:`deadline_scope`, the budget's clock started when the
    object was built -- the async serving front-end creates the deadline
    at admission time, so the queue wait and the batching window both
    count against the request's budget, not just the scoring work.
    ``deadline=None`` is a no-op scope.
    """
    if deadline is None:
        yield _CURRENT.get()
        return
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)


def check_deadline(stage: str) -> Optional[float]:
    """Stage-boundary check against the armed deadline (if any).

    Returns the remaining budget in seconds (None when no deadline is
    armed) so instrumented callers can histogram it; raises
    :class:`DeadlineExceeded` when the budget is spent.
    """
    deadline = _CURRENT.get()
    if deadline is None:
        return None
    deadline.check(stage)
    return deadline.remaining()
