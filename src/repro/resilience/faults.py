"""Deterministic fault injection: named fault points + armed triggers.

The pipeline declares a small catalog of **fault points** -- places where
an infrastructure failure can plausibly occur::

    db.execute          one SQL statement execution
    pool.map            one worker-pool map call
    codec.decode        one stored-video RVF decode
    ann.probe           one IVF candidate-index probe
    snapshot.open       one mmap snapshot open (-> SQL-rebuild fallback)
    snapshot.compact    one snapshot compaction (WAL fold + rewrite)
    shard.query         one scatter-gather shard dispatch (-> partial result)
    serving.request     one admitted async-serving search request
    extractor.<name>    one query-side feature extraction (e.g. extractor.gabor)

Tests and chaos runs *arm* points with a spec string (the ``REPRO_FAULTS``
environment variable or ``SystemConfig(fault_spec=...)``)::

    extractor.gabor:every=1            fail every gabor extraction
    db.execute:p=0.2,seed=7            fail ~20% of statements, seeded
    codec.decode:once                  fail only the first decode
    ann.probe:every=3;db.execute:once  several points, ';'-separated

Every trigger is deterministic: ``every``/``once`` count calls,
``p`` draws from a generator seeded at arm time -- so two identical runs
inject the identical fault sequence and the retry/trip counters they
produce match byte-for-byte.  A point that is not armed costs one dict
lookup; a registry with no armed spec costs one attribute check.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs import NULL_OBS, Obs
from repro.resilience.errors import FaultInjected

__all__ = [
    "FAULTS_ENV_VAR",
    "KNOWN_POINTS",
    "FaultSpec",
    "FaultRegistry",
    "NULL_FAULTS",
    "parse_fault_spec",
    "spec_from_env",
]

#: environment variable consulted when ``SystemConfig.fault_spec`` is None
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: exact fault-point names (plus the ``extractor.<name>`` family)
KNOWN_POINTS = frozenset(
    {
        "db.execute",
        "pool.map",
        "codec.decode",
        "ann.probe",
        "snapshot.open",
        "snapshot.compact",
        "shard.query",
        "serving.request",
    }
)

_EXTRACTOR_POINT = re.compile(r"extractor\.[a-z_][a-z0-9_]*$")


def _valid_point(point: str) -> bool:
    return point in KNOWN_POINTS or bool(_EXTRACTOR_POINT.fullmatch(point))


@dataclass(frozen=True)
class FaultSpec:
    """One armed trigger: fire ``point`` per ``mode``.

    ``mode`` is ``"every"`` (fire when the call count is a multiple of
    ``n``), ``"once"`` (first call only), or ``"p"`` (independent seeded
    Bernoulli draw per call with probability ``p``).
    """

    point: str
    mode: str
    n: int = 1
    p: float = 0.0
    seed: int = 2012

    def __post_init__(self) -> None:
        if not _valid_point(self.point):
            raise ValueError(
                f"unknown fault point {self.point!r}; known: "
                f"{sorted(KNOWN_POINTS)} or extractor.<name>"
            )
        if self.mode not in ("every", "once", "p"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == "every" and self.n < 1:
            raise ValueError("every=N requires N >= 1")
        if self.mode == "p" and not 0.0 < self.p <= 1.0:
            raise ValueError("p must lie in (0, 1]")


def parse_fault_spec(text: str) -> List[FaultSpec]:
    """Parse a ``point:trigger[;point:trigger...]`` spec string."""
    specs: List[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if ":" not in clause:
            raise ValueError(
                f"malformed fault clause {clause!r} (expected point:trigger)"
            )
        point, trigger = clause.split(":", 1)
        point = point.strip()
        mode: Optional[str] = None
        n, p, seed = 1, 0.0, 2012
        for part in trigger.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "once":
                mode = "once"
            elif part.startswith("every="):
                mode = "every"
                n = int(part.split("=", 1)[1])
            elif part.startswith("p="):
                mode = "p"
                p = float(part.split("=", 1)[1])
            elif part.startswith("seed="):
                seed = int(part.split("=", 1)[1])
            else:
                raise ValueError(f"unknown fault trigger option {part!r}")
        if mode is None:
            raise ValueError(f"fault clause {clause!r} names no trigger")
        specs.append(FaultSpec(point=point, mode=mode, n=n, p=p, seed=seed))
    return specs


def spec_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[str]:
    """The ``REPRO_FAULTS`` value, or None when unset/empty."""
    env = os.environ if environ is None else environ
    value = env.get(FAULTS_ENV_VAR, "").strip()
    return value or None


class _ArmedPoint:
    """Per-point trigger state (call counter / seeded draw stream)."""

    __slots__ = ("spec", "calls", "fired", "_rng")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.calls = 0
        self.fired = 0
        self._rng = (
            np.random.default_rng(spec.seed) if spec.mode == "p" else None
        )

    def should_fire(self) -> bool:
        self.calls += 1
        if self.spec.mode == "once":
            return self.calls == 1
        if self.spec.mode == "every":
            return self.calls % self.spec.n == 0
        return float(self._rng.random()) < self.spec.p


class FaultRegistry:
    """Holds the armed fault points and fires them deterministically.

    ``fire(point)`` raises :class:`FaultInjected` when the point's
    trigger says so, and is a near-no-op otherwise.  An un-armed registry
    (``spec=None``) short-circuits on one boolean.
    """

    def __init__(self, spec: Optional[str] = None, obs: Obs = NULL_OBS):
        self._armed: Dict[str, _ArmedPoint] = {}
        self._m_injected = obs.counter(
            "repro_resilience_faults_injected_total",
            "Faults injected by armed fault points.",
            labelnames=("point",),
        )
        if spec:
            for fault in parse_fault_spec(spec):
                self._armed[fault.point] = _ArmedPoint(fault)

    @property
    def armed(self) -> bool:
        return bool(self._armed)

    def armed_points(self) -> List[str]:
        return sorted(self._armed)

    def fire(self, point: str) -> None:
        """Raise :class:`FaultInjected` if ``point`` is armed and triggers."""
        if not self._armed:
            return
        state = self._armed.get(point)
        if state is None or not state.should_fire():
            return
        state.fired += 1
        self._m_injected.labels(point=point).inc()
        raise FaultInjected(point, state.fired)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-point call/fire counters (for tests and ``repro stats``)."""
        return {
            point: {"calls": s.calls, "fired": s.fired}
            for point, s in sorted(self._armed.items())
        }


#: shared un-armed registry -- the default for standalone components
NULL_FAULTS = FaultRegistry()
