"""Retry and circuit-breaker policies.

Both policies are deterministic by construction so chaos runs reproduce
byte-for-byte:

- :class:`Backoff` computes the attempt ``k`` delay as a *pure function*
  of ``(seed, k)`` -- the jitter draw comes from a generator seeded with
  exactly that pair, so two runs with the same seed sleep for identical
  durations and a test can precompute the whole schedule.
- :class:`CircuitBreaker` is a plain closed/open/half-open state machine
  over a sliding outcome window; given the same outcome sequence it makes
  the same transitions (the clock only gates the open -> half-open probe).

``Retry.call`` is the only place in ``src/`` allowed to block in
``time.sleep`` (reprolint R13): ad-hoc sleeps hide backpressure from the
policy layer and from the metrics.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple, Type

import numpy as np

from repro.obs import NULL_OBS, Obs
from repro.resilience.errors import CircuitOpenError, RetryExhausted

__all__ = ["Backoff", "Retry", "CircuitBreaker", "BREAKER_STATES"]


class Backoff:
    """Exponential backoff with deterministic, seeded, *subtractive* jitter.

    The attempt-``k`` delay is ``min(cap, base * factor**k)`` scaled by
    ``1 - jitter * u_k`` with ``u_k`` drawn from ``default_rng((seed, k))``,
    so every delay lies in ``[(1 - jitter) * bound_k, bound_k]`` where the
    un-jittered bound is monotone non-decreasing in ``k``.
    """

    def __init__(
        self,
        base: float = 0.01,
        factor: float = 2.0,
        cap: float = 1.0,
        jitter: float = 0.5,
        seed: int = 2012,
    ):
        if base < 0 or cap < 0:
            raise ValueError("base and cap must be non-negative")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.seed = int(seed)

    def bound(self, attempt: int) -> float:
        """The un-jittered (maximum) delay before retry ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.cap, self.base * self.factor**attempt)

    def delay(self, attempt: int) -> float:
        """The actual delay before retry ``attempt`` (jitter applied)."""
        bound = self.bound(attempt)
        u = float(np.random.default_rng((self.seed, attempt)).random())
        return bound * (1.0 - self.jitter * u)

    def schedule(self, attempts: int) -> List[float]:
        """All delays of an ``attempts``-attempt retry loop, in order."""
        return [self.delay(k) for k in range(max(0, attempts - 1))]


class Retry:
    """Bounded retry loop: max attempts plus an elapsed-time budget.

    ``retry_on`` restricts which exceptions are retried; anything else
    propagates immediately (a malformed SQL statement should not burn
    three attempts).  When every attempt fails, :class:`RetryExhausted`
    is raised with the last error chained.
    """

    def __init__(
        self,
        attempts: int = 3,
        backoff: Optional[Backoff] = None,
        max_elapsed: Optional[float] = None,
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        obs: Obs = NULL_OBS,
    ):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if max_elapsed is not None and max_elapsed <= 0:
            raise ValueError("max_elapsed must be positive")
        self.attempts = int(attempts)
        self.backoff = backoff or Backoff()
        self.max_elapsed = max_elapsed
        self.retry_on = retry_on
        self._clock = clock
        self._sleep = sleep
        self._m_retries = obs.counter(
            "repro_resilience_retries_total",
            "Retry attempts after a failure, by fault point.",
            labelnames=("point",),
        )

    def call(self, point: str, fn: Callable[[], object]) -> object:
        """Run ``fn`` under this policy; returns its result."""
        t0 = self._clock()
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retry_on as exc:  # noqa: B902 (configured tuple)
                last = exc
                out_of_attempts = attempt + 1 >= self.attempts
                out_of_budget = (
                    self.max_elapsed is not None
                    and self._clock() - t0 >= self.max_elapsed
                )
                if out_of_attempts or out_of_budget:
                    raise RetryExhausted(point, attempt + 1, exc) from exc
                self._m_retries.labels(point=point).inc()
                self._sleep(self.backoff.delay(attempt))
        raise RetryExhausted(point, self.attempts, last)  # pragma: no cover


#: state gauge encoding (repro_resilience_breaker_state)
BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """Closed / open / half-open breaker over a failure-rate window.

    The breaker trips open when the sliding window of the last
    ``window`` outcomes holds at least ``min_calls`` samples and the
    failure fraction reaches ``failure_threshold``.  While open, calls
    raise :class:`CircuitOpenError` until ``cooldown`` seconds pass;
    then one half-open probe is let through -- success closes the
    breaker and clears the window, failure re-opens it.
    """

    def __init__(
        self,
        name: str,
        window: int = 16,
        failure_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
        obs: Obs = NULL_OBS,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must lie in (0, 1]")
        if min_calls < 1:
            raise ValueError("min_calls must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.name = name
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_calls = int(min_calls)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._state = "closed"
        self._outcomes: List[bool] = []  # True = failure
        self._opened_at = 0.0
        self._trips = 0
        self._m_trips = obs.counter(
            "repro_resilience_breaker_trips_total",
            "Closed/half-open to open transitions, by breaker.",
            labelnames=("breaker",),
        )
        self._m_state = obs.gauge(
            "repro_resilience_breaker_state",
            "Breaker state (0 closed, 1 half-open, 2 open).",
            labelnames=("breaker",),
        )
        self._m_state.labels(breaker=name).set(BREAKER_STATES["closed"])

    # -- state machine --------------------------------------------------------

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    @property
    def trip_count(self) -> int:
        return self._trips

    def _set_state(self, state: str) -> None:
        self._state = state
        self._m_state.labels(breaker=self.name).set(BREAKER_STATES[state])

    def _maybe_half_open(self) -> None:
        if self._state == "open" and self._clock() - self._opened_at >= self.cooldown:
            self._set_state("half_open")

    def retry_after(self) -> float:
        """Seconds until an open breaker admits its half-open probe."""
        if self._state != "open":
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def guard(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        self._maybe_half_open()
        if self._state == "open":
            raise CircuitOpenError(self.name, self.retry_after())

    def record_success(self) -> None:
        if self._state == "half_open":
            self._outcomes.clear()
            self._set_state("closed")
            return
        self._push(False)

    def record_failure(self) -> None:
        if self._state == "half_open":
            self._trip()
            return
        self._push(True)
        if len(self._outcomes) >= self.min_calls:
            rate = sum(self._outcomes) / len(self._outcomes)
            if rate >= self.failure_threshold:
                self._trip()

    def _push(self, failed: bool) -> None:
        self._outcomes.append(failed)
        if len(self._outcomes) > self.window:
            del self._outcomes[0]

    def _trip(self) -> None:
        self._outcomes.clear()
        self._opened_at = self._clock()
        self._trips += 1
        self._m_trips.labels(breaker=self.name).inc()
        self._set_state("open")

    # -- call wrapper ---------------------------------------------------------

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker, recording the outcome."""
        self.guard()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> dict:
        """State snapshot for tests and the stats surface."""
        return {
            "state": self.state,
            "trips": self._trips,
            "window_failures": sum(self._outcomes),
            "window_size": len(self._outcomes),
        }
