"""Exception hierarchy of the resilience layer.

Every failure the policy layer can *originate* derives from
:class:`ResilienceError`, so callers can catch the whole family with one
clause.  :class:`FaultInjected` is what an armed fault point raises -- it
deliberately does **not** subclass the domain errors (``DatabaseError``
etc.), so a chaos run exercises the same generic handling paths a real
infrastructure failure would take.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ResilienceError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "RetryExhausted",
    "FaultInjected",
]


class ResilienceError(Exception):
    """Base class for failures originated by the resilience layer."""


class DeadlineExceeded(ResilienceError):
    """The per-request time budget ran out at a stage boundary."""

    def __init__(self, stage: str, budget: float, elapsed: float):
        super().__init__(
            f"deadline exceeded at stage {stage!r}: "
            f"{elapsed:.3f}s elapsed of a {budget:.3f}s budget"
        )
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed


class CircuitOpenError(ResilienceError):
    """A call was refused because its circuit breaker is open.

    ``retry_after`` is the breaker's remaining cool-down in seconds (the
    web layer surfaces it as an HTTP ``Retry-After`` header).
    """

    def __init__(self, breaker: str, retry_after: float):
        super().__init__(
            f"circuit breaker {breaker!r} is open; retry in {retry_after:.3f}s"
        )
        self.breaker = breaker
        self.retry_after = retry_after


class RetryExhausted(ResilienceError):
    """A retried call failed on every allowed attempt.

    The last underlying failure is chained as ``__cause__`` and kept on
    ``last_error`` for programmatic access.
    """

    def __init__(self, point: str, attempts: int, last_error: Optional[BaseException]):
        super().__init__(
            f"{point}: all {attempts} attempt(s) failed "
            f"(last: {type(last_error).__name__}: {last_error})"
        )
        self.point = point
        self.attempts = attempts
        self.last_error = last_error


class FaultInjected(ResilienceError):
    """The deterministic failure an armed fault point raises."""

    def __init__(self, point: str, fire_count: int):
        super().__init__(f"injected fault at {point!r} (firing #{fire_count})")
        self.point = point
        self.fire_count = fire_count
