"""``repro.resilience``: fault injection, retry/backoff, graceful degradation.

Three pieces, usable separately or through the
:class:`ResiliencePolicies` facade the retrieval system threads through
its layers (mirroring how ``repro.obs`` is wired):

- :mod:`repro.resilience.policy` -- :class:`Retry` (exponential backoff
  with deterministic seeded jitter) and :class:`CircuitBreaker`
  (closed/open/half-open over a failure-rate window);
- :mod:`repro.resilience.deadline` -- contextvars-propagated per-request
  time budgets checked at stage boundaries;
- :mod:`repro.resilience.faults` -- a registry of named fault points that
  ``REPRO_FAULTS`` / ``SystemConfig(fault_spec)`` arm with seeded
  probability / every-Nth / once triggers, so chaos runs reproduce
  byte-for-byte.

See ``docs/resilience.md`` for the fault-point catalog, policy knobs, and
degradation semantics.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator, Optional

from repro.obs import NULL_OBS, Obs
from repro.resilience.deadline import (
    Deadline,
    armed_deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    FaultInjected,
    ResilienceError,
    RetryExhausted,
)
from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    KNOWN_POINTS,
    NULL_FAULTS,
    FaultRegistry,
    FaultSpec,
    parse_fault_spec,
    spec_from_env,
)
from repro.resilience.policy import BREAKER_STATES, Backoff, CircuitBreaker, Retry

__all__ = [
    "ResilienceError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "RetryExhausted",
    "FaultInjected",
    "Backoff",
    "Retry",
    "CircuitBreaker",
    "BREAKER_STATES",
    "Deadline",
    "armed_deadline",
    "deadline_scope",
    "current_deadline",
    "check_deadline",
    "FaultRegistry",
    "FaultSpec",
    "NULL_FAULTS",
    "parse_fault_spec",
    "spec_from_env",
    "FAULTS_ENV_VAR",
    "KNOWN_POINTS",
    "ResiliencePolicies",
    "NULL_POLICIES",
]

#: histogram edges for the deadline-remaining samples (seconds)
_REMAINING_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class ResiliencePolicies:
    """The policy bundle one retrieval system threads through its layers.

    Holds the armed :class:`FaultRegistry`, the shared :class:`Retry`
    policy (db statement execution and video decode), the ANN and
    worker-pool circuit breakers, and the request-deadline knob.  A
    disabled instance (``enabled=False``, or the shared
    :data:`NULL_POLICIES`) turns every hook into an early-out so the
    happy path allocates nothing.
    """

    def __init__(
        self,
        enabled: bool = True,
        fault_spec: Optional[str] = None,
        retry_attempts: int = 3,
        retry_base_delay: float = 0.01,
        retry_cap: float = 1.0,
        retry_jitter: float = 0.5,
        retry_max_elapsed: Optional[float] = None,
        retry_seed: int = 2012,
        breaker_window: int = 16,
        breaker_failure_threshold: float = 0.5,
        breaker_min_calls: int = 4,
        breaker_cooldown: float = 0.1,
        request_deadline: Optional[float] = None,
        obs: Obs = NULL_OBS,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.enabled = bool(enabled)
        self.request_deadline = request_deadline
        obs = obs if self.enabled else NULL_OBS
        self.faults = FaultRegistry(fault_spec if self.enabled else None, obs=obs)
        retry_kwargs = dict(
            attempts=retry_attempts,
            backoff=Backoff(
                base=retry_base_delay,
                cap=retry_cap,
                jitter=retry_jitter,
                seed=retry_seed,
            ),
            max_elapsed=retry_max_elapsed,
            retry_on=(FaultInjected,),
            clock=clock,
            obs=obs,
        )
        if sleep is not None:
            retry_kwargs["sleep"] = sleep
        self.retry = Retry(**retry_kwargs)
        self._breaker_kwargs = dict(
            window=breaker_window,
            failure_threshold=breaker_failure_threshold,
            min_calls=breaker_min_calls,
            cooldown=breaker_cooldown,
            clock=clock,
            obs=obs,
        )
        self.ann_breaker = self.make_breaker("ann")
        self.pool_breaker = self.make_breaker("pool")
        self._m_degraded = obs.counter(
            "repro_resilience_degraded_total",
            "Requests that completed with degraded semantics, by reason.",
            labelnames=("reason",),
        )
        self._m_fallbacks = obs.counter(
            "repro_resilience_fallbacks_total",
            "Graceful-degradation fallbacks taken, by kind.",
            labelnames=("kind",),
        )
        self._m_remaining = obs.histogram(
            "repro_resilience_deadline_remaining_seconds",
            "Remaining request budget at each stage-boundary check.",
            buckets=_REMAINING_BUCKETS,
        )

    @classmethod
    def from_config(cls, config, obs: Obs = NULL_OBS) -> "ResiliencePolicies":
        """Build from a :class:`~repro.core.config.SystemConfig`.

        ``fault_spec=None`` falls back to the ``REPRO_FAULTS`` environment
        variable, so ``REPRO_FAULTS="extractor.gabor:every=1" repro search``
        arms faults without code changes.
        """
        spec = config.fault_spec
        if spec is None:
            spec = spec_from_env()
        return cls(
            enabled=config.resilience,
            fault_spec=spec,
            retry_attempts=config.retry_attempts,
            retry_base_delay=config.retry_base_delay,
            retry_max_elapsed=config.retry_max_elapsed,
            retry_seed=config.retry_seed,
            breaker_window=config.breaker_window,
            breaker_failure_threshold=config.breaker_failure_threshold,
            breaker_cooldown=config.breaker_cooldown,
            request_deadline=config.request_deadline,
            obs=obs,
        )

    def make_breaker(self, name: str) -> CircuitBreaker:
        """A new breaker sharing this policy bundle's window/cooldown knobs.

        The sharded coordinator builds one per shard, so a single sick
        partition trips open without affecting its siblings (or the
        fixed :attr:`ann_breaker` / :attr:`pool_breaker`).
        """
        return CircuitBreaker(name, **self._breaker_kwargs)

    # -- hooks called from the pipeline ---------------------------------------

    def fire(self, point: str) -> None:
        """Fault-point hook (no-op unless the registry armed ``point``)."""
        if self.enabled:
            self.faults.fire(point)

    def run(self, point: str, fn: Callable[[], object]) -> object:
        """Fire ``point`` then run ``fn`` under the shared retry policy.

        Only injected faults are retried (``retry_on=(FaultInjected,)``):
        semantic failures -- malformed SQL, a genuinely corrupt blob --
        are deterministic and propagate immediately.
        """
        if not self.enabled:
            return fn()

        def attempt() -> object:
            self.faults.fire(point)
            return fn()

        return self.retry.call(point, attempt)

    def check_stage(self, stage: str) -> None:
        """Deadline check at one ingest/search stage boundary."""
        if not self.enabled:
            return
        remaining = check_deadline(stage)
        if remaining is not None:
            self._m_remaining.observe(remaining)

    @contextlib.contextmanager
    def request_scope(self) -> Iterator[None]:
        """Arm the configured request deadline unless one is already armed."""
        if (
            not self.enabled
            or self.request_deadline is None
            or current_deadline() is not None
        ):
            yield
            return
        with deadline_scope(self.request_deadline):
            yield

    def note_degraded(self, reason: str) -> None:
        self._m_degraded.labels(reason=reason).inc()

    def note_fallback(self, kind: str) -> None:
        self._m_fallbacks.labels(kind=kind).inc()

    def stats(self) -> dict:
        """Snapshot for ``repro stats`` / tests (breakers + fault points)."""
        return {
            "enabled": self.enabled,
            "faults": self.faults.stats(),
            "breakers": {
                "ann": self.ann_breaker.stats(),
                "pool": self.pool_breaker.stats(),
            },
            "request_deadline": self.request_deadline,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResiliencePolicies(enabled={self.enabled}, "
            f"armed={self.faults.armed_points()})"
        )


#: shared disabled instance -- the default for standalone components
NULL_POLICIES = ResiliencePolicies(enabled=False)
