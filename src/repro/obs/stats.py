"""Human rendering of a :meth:`VideoRetrievalSystem.metrics` snapshot.

The ``repro stats`` command feeds either a live system's snapshot or a
saved JSON dump (``repro stats --json > dump.json`` round-trips) through
:func:`format_stats`.  The layout is a fixed-width table, one subsystem
summary block followed by every non-zero metric sample in the registry.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

__all__ = ["format_stats"]

#: subsystem summary sections, in display order
_SECTIONS = (
    "store", "index", "ann", "cache", "snapshot", "sharding",
    "resilience", "slow_log",
)


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels.items())
    return "{" + inner + "}"


def _registry_rows(registry: Mapping[str, dict]) -> List[tuple]:
    """``(sample_name, value)`` rows for every non-empty sample."""
    rows: List[tuple] = []
    for name in sorted(registry):
        family = registry[name]
        for sample in family.get("samples", []):
            labels = _fmt_labels(sample.get("labels", {}))
            if family.get("type") == "histogram":
                count = sample.get("count", 0)
                if not count:
                    continue
                total = sample.get("sum", 0.0)
                mean = total / count if count else 0.0
                rows.append((f"{name}{labels}", f"n={count} mean={mean:.6g}s"))
            else:
                value = sample.get("value", 0)
                if not value:
                    continue
                rows.append((f"{name}{labels}", _fmt_value(value)))
    return rows


def format_stats(snapshot: Mapping[str, object]) -> str:
    """Render one metrics snapshot as a plain-text table."""
    lines: List[str] = []
    for section in _SECTIONS:
        data: Optional[Dict[str, object]] = snapshot.get(section)  # type: ignore[assignment]
        if data is None:
            lines.append(f"{section:<8} (disabled)")
            continue
        pairs = " ".join(
            f"{k}={_fmt_value(v)}"
            for k, v in data.items()
            if not isinstance(v, (dict, list))  # nested payloads get own views
        )
        lines.append(f"{section:<8} {pairs}")

    registry = snapshot.get("registry") or {}
    rows = _registry_rows(registry)
    if rows:
        width = max(len(name) for name, _ in rows)
        lines.append("")
        lines.append(f"{'metric':<{width}}  value")
        for name, value in rows:
            lines.append(f"{name:<{width}}  {value}")
    else:
        lines.append("")
        lines.append("(no metric samples recorded)")
    return "\n".join(lines)
