"""Structured logging: stdlib-backed ``key=value`` event loggers.

Every module logs through a :class:`KvLogger`::

    from repro.obs import log
    logger = log.get_logger(__name__)
    logger.info("ingest.video", video_id=3, frames=120, keyframes=9)
    # 2026-08-06 12:00:00 INFO repro.core.ingest ingest.video video_id=3 frames=120 keyframes=9

All loggers hang off the ``repro`` stdlib logger, which gets one stderr
handler the first time anything logs (unless the application configured
handlers itself -- the handler is only attached when the ``repro`` logger
has none, so embedding applications stay in control).  The level comes
from the ``REPRO_LOG_LEVEL`` environment variable (default ``WARNING``)
and can be changed at runtime with :func:`set_level` (which is what
``SystemConfig.obs_log_level`` feeds).

When a span is open on the emitting thread, every line gains a trailing
``trace=<id>`` field.  The id travels with the distributed trace context
into shard workers, so coordinator and worker lines for one query grep
together: ``grep trace=4f2a... coordinator.log worker-*.log``.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, Optional, Union

from repro.obs import tracing

__all__ = ["KvLogger", "get_logger", "set_level", "kv_format", "LOG_LEVEL_ENV_VAR"]

#: environment override for the initial log level
LOG_LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

_ROOT_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"

_configured = False
_config_lock = threading.Lock()
_loggers: Dict[str, "KvLogger"] = {}


def _coerce_level(level: Union[int, str]) -> int:
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).strip().upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def _ensure_configured() -> logging.Logger:
    """Attach the default handler/level to the ``repro`` logger once."""
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured:
        return root
    with _config_lock:
        if _configured:
            return root
        if not root.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(logging.Formatter(_FORMAT))
            root.addHandler(handler)
            root.propagate = False
        if root.level == logging.NOTSET:
            env = os.environ.get(LOG_LEVEL_ENV_VAR, "").strip()
            try:
                root.setLevel(_coerce_level(env) if env else logging.WARNING)
            except ValueError:
                root.setLevel(logging.WARNING)
        _configured = True
    return root


def set_level(level: Union[int, str]) -> None:
    """Set the level of the whole ``repro`` logger tree."""
    _ensure_configured().setLevel(_coerce_level(level))


def kv_format(event: str, fields: Dict[str, object]) -> str:
    """``event key=value ...`` with values kept grep-friendly."""
    parts = [event]
    for key, value in fields.items():
        if isinstance(value, float):
            rendered = format(value, ".6g")
        elif isinstance(value, str):
            rendered = value if value and " " not in value else repr(value)
        else:
            rendered = str(value)
        parts.append(f"{key}={rendered}")
    return " ".join(parts)


class KvLogger:
    """Thin wrapper turning ``(event, **fields)`` into one formatted line."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def stdlib(self) -> logging.Logger:
        return self._logger

    def _emit(self, level: int, event: str, fields: Dict[str, object]) -> None:
        if self._logger.isEnabledFor(level):
            trace_id = tracing.current_trace_id()
            if trace_id is not None:
                fields["trace"] = trace_id
            self._logger.log(level, kv_format(event, fields))

    def debug(self, event: str, **fields: object) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: object) -> None:
        """ERROR with the current exception's traceback appended."""
        if self._logger.isEnabledFor(logging.ERROR):
            trace_id = tracing.current_trace_id()
            if trace_id is not None:
                fields["trace"] = trace_id
            self._logger.error(kv_format(event, fields), exc_info=True)


def get_logger(name: Optional[str] = None) -> KvLogger:
    """The module's :class:`KvLogger` (cached; always under ``repro``)."""
    _ensure_configured()
    if not name:
        full = _ROOT_NAME
    elif name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        full = name
    else:
        full = f"{_ROOT_NAME}.{name}"
    logger = _loggers.get(full)
    if logger is None:
        logger = _loggers.setdefault(full, KvLogger(logging.getLogger(full)))
    return logger
