"""The :class:`Obs` facade: one object bundling metrics + tracing.

Every instrumented layer takes an optional ``obs`` argument.  A live
``Obs`` carries a :class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer`; a disabled one (``Obs(enabled=False)``
or the shared :data:`NULL_OBS`) carries the shared null twins, so call
sites never branch::

    obs = Obs()                                # per-system, own registry
    queries = obs.counter("repro_search_queries_total", "Queries.")
    with obs.span("search.query_frame", top_k=20):
        queries.inc()

Overhead of the disabled path is structural, not statistical: metric
handles *are* the shared ``NULL_METRIC`` and every ``span()`` returns the
one shared ``NULL_SPAN``, so a disabled system pays a no-op method call
per instrumentation point and allocates nothing (see
``tests/obs/test_facade.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slowlog import NULL_SLOW_LOG, NullSlowQueryLog, SlowQueryLog
from repro.obs.tracing import NULL_TRACER, NullSpan, NullTracer, Span, Tracer

__all__ = ["Obs", "NULL_OBS"]


class Obs:
    """Metrics registry + tracer + slow-query log behind one gate."""

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_buffer: int = 64,
        latency_buckets: Optional[Sequence[float]] = None,
        slow_query_ms: float = 0.0,
        slow_log_size: int = 64,
    ):
        self.enabled = bool(enabled)
        self.latency_buckets: tuple = (
            tuple(latency_buckets) if latency_buckets else DEFAULT_BUCKETS
        )
        if self.enabled:
            self.registry: Union[MetricsRegistry, NullRegistry] = (
                registry if registry is not None else MetricsRegistry()
            )
            self.tracer: Union[Tracer, NullTracer] = (
                tracer if tracer is not None else Tracer(capacity=trace_buffer)
            )
            self.slow_log: Union[SlowQueryLog, NullSlowQueryLog] = (
                SlowQueryLog(capacity=slow_log_size, threshold_ms=slow_query_ms)
                if slow_query_ms > 0
                else NULL_SLOW_LOG
            )
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
            self.slow_log = NULL_SLOW_LOG

    # -- metrics --------------------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self.registry.gauge(name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        return self.registry.histogram(name, help, labelnames, buckets=buckets)

    # -- tracing --------------------------------------------------------------

    def span(self, name: str, /, **attrs: object) -> Union[Span, NullSpan]:
        return self.tracer.span(name, **attrs)

    def recent_traces(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return self.tracer.recent(limit)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Obs(enabled={self.enabled})"


#: shared disabled instance -- the default for standalone components
NULL_OBS = Obs(enabled=False)
