"""``repro.obs``: the observability layer (metrics, tracing, logging).

Three zero-dependency pieces, usable separately or through the
:class:`~repro.obs.facade.Obs` facade the retrieval system threads through
its layers:

- :mod:`repro.obs.metrics` -- Counter/Gauge/Histogram registry with
  Prometheus-text and JSON renderers;
- :mod:`repro.obs.tracing` -- hierarchical spans with a ring buffer of
  recent request traces;
- :mod:`repro.obs.log` -- stdlib-backed ``key=value`` structured logging.

See ``docs/observability.md`` for the metric catalog and trace schema.
"""

from repro.obs import log
from repro.obs.facade import NULL_OBS, Obs
from repro.obs.stats import format_stats
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_REGISTRY,
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    NullMetric,
    NullRegistry,
    diff_state,
)
from repro.obs.slowlog import NULL_SLOW_LOG, NullSlowQueryLog, SlowQueryLog
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    capture_subtree,
    current_span,
    current_trace_context,
    current_trace_id,
    free_span,
    new_span_id,
    new_trace_id,
    span_from_dict,
)

__all__ = [
    "Obs",
    "NULL_OBS",
    "log",
    "format_stats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricError",
    "NullMetric",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "DEFAULT_REGISTRY",
    "DEFAULT_BUCKETS",
    "diff_state",
    "SlowQueryLog",
    "NullSlowQueryLog",
    "NULL_SLOW_LOG",
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "capture_subtree",
    "current_span",
    "current_trace_context",
    "current_trace_id",
    "free_span",
    "new_span_id",
    "new_trace_id",
    "span_from_dict",
]
