"""Bounded ring buffer of slow-query records.

Queries whose wall time crosses ``threshold_ms`` are captured with their
explain payload into a fixed-capacity deque, newest evicting oldest, for
post-hoc inspection via ``GET /debug/slow`` and ``repro stats --slow``.

The fast-path contract mirrors the rest of ``repro.obs``: callers guard
with ``ms >= slow_log.threshold_ms`` *before* building the entry dict, and
``NULL_SLOW_LOG`` (the disabled twin) advertises an infinite threshold —
so a disabled or never-tripped slow log costs one float comparison per
query.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["SlowQueryLog", "NullSlowQueryLog", "NULL_SLOW_LOG"]


class SlowQueryLog:
    """Thread-safe ring buffer of queries slower than ``threshold_ms``."""

    def __init__(self, capacity: int = 64, threshold_ms: float = 500.0):
        if capacity < 1:
            raise ValueError(f"slow-log capacity must be >= 1, got {capacity}")
        if not threshold_ms > 0:
            raise ValueError(
                f"slow-log threshold must be > 0 ms, got {threshold_ms}"
            )
        self.capacity = int(capacity)
        self.threshold_ms = float(threshold_ms)
        self._entries: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, ms: float, **fields: object) -> bool:
        """Capture one query taking ``ms`` milliseconds; drop fast ones."""
        ms = float(ms)
        if ms < self.threshold_ms:
            return False
        entry: Dict[str, object] = {"ts": time.time(), "ms": round(ms, 3)}
        entry.update(fields)
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return True

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first copies of the buffered entries."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if limit is not None:
            entries = entries[: max(0, int(limit))]
        return [dict(e) for e in entries]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            buffered = len(self._entries)
            recorded = self._recorded
        return {
            "threshold_ms": self.threshold_ms,
            "capacity": self.capacity,
            "recorded_total": recorded,
            "buffered": buffered,
        }


class NullSlowQueryLog:
    """Disabled twin: infinite threshold, so the guard never trips."""

    __slots__ = ()

    threshold_ms = math.inf
    capacity = 0

    def record(self, ms: float, **fields: object) -> bool:
        return False

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        pass

    def stats(self) -> None:
        return None


NULL_SLOW_LOG = NullSlowQueryLog()
