"""Hierarchical request tracing.

A :class:`Tracer` hands out spans as context managers::

    with tracer.span("search.query_frame", top_k=20) as sp:
        with tracer.span("search.ann.probe"):
            ...
        sp.annotate(candidates=123)

Nesting is tracked per thread (``contextvars``), so the threaded HTTP
server traces each request independently.  When a *root* span closes it is
pushed into a bounded ring buffer of recent traces for post-hoc
inspection (``GET /traces/recent``, ``system.recent_traces()``).  A span
that exits through an exception is marked ``status="error"`` with the
exception's type and message, and the exception propagates unchanged.

``NULL_TRACER`` is the disabled twin: ``span()`` returns one shared no-op
context manager, keeping the off-path overhead to a single call.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_SPAN", "NULL_TRACER"]

#: the span currently open on this thread (tail of the active chain)
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed operation; closes via the context-manager protocol."""

    __slots__ = (
        "name", "attrs", "children", "status", "error",
        "start_time", "duration_ms", "_t0", "_tracer", "_parent", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.children: List[Span] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.start_time = time.time()
        self.duration_ms: Optional[float] = None
        self._t0 = time.perf_counter()
        self._tracer = tracer
        self._parent: Optional[Span] = None
        self._token: Optional[contextvars.Token] = None

    def annotate(self, **attrs: object) -> "Span":
        """Attach more attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = round((time.perf_counter() - self._t0) * 1000.0, 4)
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        if self._token is not None:
            _CURRENT.reset(self._token)
        if self._parent is not None:
            self._parent.children.append(self)
        else:
            self._tracer._record(self)
        return False  # never swallow

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start_time": self.start_time,
            "duration_ms": self.duration_ms,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = {k: _plain(v) for k, v in self.attrs.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration_ms}ms, {self.status})"


def _plain(value: object) -> object:
    """A JSON-safe rendition of one attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class Tracer:
    """Span factory plus a ring buffer of the last ``capacity`` root traces."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._recent: Deque[Span] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def span(self, name: str, /, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _record(self, root: Span) -> None:
        with self._lock:
            self._recent.append(root)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first dicts of the buffered root traces."""
        with self._lock:
            spans = list(self._recent)
        spans.reverse()
        if limit is not None:
            spans = spans[: max(0, int(limit))]
        return [s.to_dict() for s in spans]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


class NullSpan:
    """Shared no-op span for disabled observability."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> "NullSpan":
        return self


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer twin whose spans are all the shared :data:`NULL_SPAN`."""

    __slots__ = ()

    def span(self, name: str, /, **attrs: object) -> NullSpan:
        return NULL_SPAN

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
