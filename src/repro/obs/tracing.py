"""Hierarchical request tracing.

A :class:`Tracer` hands out spans as context managers::

    with tracer.span("search.query_frame", top_k=20) as sp:
        with tracer.span("search.ann.probe"):
            ...
        sp.annotate(candidates=123)

Nesting is tracked per thread (``contextvars``), so the threaded HTTP
server traces each request independently.  When a *root* span closes it is
pushed into a bounded ring buffer of recent traces for post-hoc
inspection (``GET /traces/recent``, ``system.recent_traces()``).  A span
that exits through an exception is marked ``status="error"`` with the
exception's type and message, and the exception propagates unchanged.

Spans carry W3C-style identifiers (``trace_id``, ``span_id``,
``parent_id``) so a trace can cross process boundaries: the coordinator
ships :func:`current_trace_context` to shard workers, a worker rebuilds
its chain under :func:`capture_subtree`, serializes it with
:meth:`Span.to_dict`, and the coordinator grafts it back via
:func:`span_from_dict` + :meth:`Span.attach`.  The round trip is
deterministic — serializing an attached subtree again yields the exact
same dict.

``NULL_TRACER`` is the disabled twin: ``span()`` returns one shared no-op
context manager, keeping the off-path overhead to a single call.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import threading
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "capture_subtree",
    "current_span",
    "current_trace_context",
    "current_trace_id",
    "free_span",
    "new_span_id",
    "new_trace_id",
    "span_from_dict",
]

#: the span currently open on this thread (tail of the active chain)
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: per-process span-id counter, seeded randomly once so ids from different
#: processes (coordinator vs. shard workers) do not collide.  ``next()`` on
#: ``itertools.count`` is atomic under the GIL — no lock on the hot path.
_SPAN_IDS = itertools.count(int.from_bytes(os.urandom(8), "big"))


def new_span_id() -> str:
    """A 16-hex-digit span id, unique within (and very likely across) processes."""
    return f"{next(_SPAN_IDS) & 0xFFFFFFFFFFFFFFFF:016x}"


def new_trace_id() -> str:
    """A 32-hex-digit trace id for a new root trace."""
    return os.urandom(16).hex()


class Span:
    """One timed operation; closes via the context-manager protocol."""

    __slots__ = (
        "name", "attrs", "children", "status", "error",
        "start_time", "duration_ms", "trace_id", "span_id", "parent_id",
        "_t0", "_tracer", "_parent", "_token",
    )

    def __init__(self, tracer: Optional["Tracer"], name: str, attrs: Dict[str, object]):
        self.name = name
        self.attrs = attrs
        self.children: List[Span] = []
        self.status = "ok"
        self.error: Optional[str] = None
        self.start_time = time.time()
        self.duration_ms: Optional[float] = None
        self.trace_id: Optional[str] = None
        self.span_id: str = new_span_id()
        self.parent_id: Optional[str] = None
        self._t0 = time.perf_counter()
        self._tracer = tracer
        self._parent: Optional[Span] = None
        self._token: Optional[contextvars.Token] = None

    def annotate(self, **attrs: object) -> "Span":
        """Attach more attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def attach(self, child: "Span") -> "Span":
        """Adopt an externally built subtree (e.g. a deserialized shard span)."""
        child._parent = self
        if child.trace_id is None:
            child.trace_id = self.trace_id
        if child.parent_id is None:
            child.parent_id = self.span_id
        self.children.append(child)
        return child

    def __enter__(self) -> "Span":
        self._parent = _CURRENT.get()
        self._token = _CURRENT.set(self)
        if self._parent is not None:
            if self.trace_id is None:
                self.trace_id = self._parent.trace_id
            self.parent_id = self._parent.span_id
        elif self.trace_id is None:
            self.trace_id = new_trace_id()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = round((time.perf_counter() - self._t0) * 1000.0, 4)
        if exc is not None:
            self.status = "error"
            self.error = f"{type(exc).__name__}: {exc}"
        if self._token is not None:
            _CURRENT.reset(self._token)
        if self._parent is not None:
            self._parent.children.append(self)
        elif self._tracer is not None:
            self._tracer._record(self)
        return False  # never swallow

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "span_id": self.span_id,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        out["start_time"] = self.start_time
        out["duration_ms"] = self.duration_ms
        out["status"] = self.status
        if self.attrs:
            out["attrs"] = {k: _plain(v) for k, v in self.attrs.items()}
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration_ms}ms, {self.status})"


def _plain(value: object) -> object:
    """A JSON-safe rendition of one attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class Tracer:
    """Span factory plus a ring buffer of the last ``capacity`` root traces."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._recent: Deque[Span] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def span(self, name: str, /, **attrs: object) -> Span:
        return Span(self, name, attrs)

    def _record(self, root: Span) -> None:
        with self._lock:
            self._recent.append(root)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first dicts of the buffered root traces."""
        with self._lock:
            spans = list(self._recent)
        spans.reverse()
        if limit is not None:
            spans = spans[: max(0, int(limit))]
        return [s.to_dict() for s in spans]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()


def current_span() -> Optional[Span]:
    """The innermost span open on this thread, if any."""
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    """Trace id of the active span chain, or ``None`` outside any span."""
    span = _CURRENT.get()
    return span.trace_id if span is not None else None


def current_trace_context() -> Optional[Dict[str, object]]:
    """A picklable trace context for cross-process propagation.

    Stamped by the coordinator into every shard task; ``None`` when no
    span is open (nothing to propagate).
    """
    span = _CURRENT.get()
    if span is None:
        return None
    return {"trace_id": span.trace_id, "span_id": span.span_id, "sampled": True}


def free_span(name: str, /, **attrs: object) -> Span:
    """A span bound to no tracer: builds a subtree without recording it."""
    return Span(None, name, attrs)


@contextlib.contextmanager
def capture_subtree(
    name: str, ctx: Optional[Mapping[str, object]] = None, /, **attrs: object
) -> Iterator[Span]:
    """Capture a span subtree under a propagated trace context.

    Runs ``name`` as a *detached* root on this thread: any enclosing span
    chain is suspended for the duration, so when a shard task falls back
    to inline execution in the coordinator process the captured subtree is
    not double-recorded (it is shipped back serialized and re-attached,
    exactly like the remote path).  The root adopts ``ctx``'s trace id and
    parent span id so the coordinator can stitch it into the request trace.
    """
    root = Span(None, name, dict(attrs))
    ctx = ctx or {}
    root.trace_id = str(ctx.get("trace_id")) if ctx.get("trace_id") else new_trace_id()
    parent = ctx.get("span_id")
    root.parent_id = str(parent) if parent else None
    saved = _CURRENT.set(None)
    try:
        with root:
            yield root
    finally:
        _CURRENT.reset(saved)


def span_from_dict(data: Mapping[str, object]) -> Span:
    """Rebuild a :class:`Span` subtree from its :meth:`Span.to_dict` form.

    The inverse of serialization up to fresh object identity:
    ``span_from_dict(d).to_dict() == d`` for any dict produced by
    :meth:`Span.to_dict` (ids, timings, status, attrs and children all
    round-trip byte-stable).
    """
    span = Span(None, str(data.get("name", "")), dict(data.get("attrs") or {}))
    span.span_id = str(data.get("span_id") or span.span_id)
    trace_id = data.get("trace_id")
    span.trace_id = str(trace_id) if trace_id is not None else None
    parent_id = data.get("parent_id")
    span.parent_id = str(parent_id) if parent_id is not None else None
    span.start_time = data.get("start_time")  # type: ignore[assignment]
    span.duration_ms = data.get("duration_ms")  # type: ignore[assignment]
    span.status = str(data.get("status", "ok"))
    error = data.get("error")
    span.error = str(error) if error is not None else None
    span.children = [span_from_dict(c) for c in data.get("children") or ()]  # type: ignore[union-attr]
    return span


class NullSpan:
    """Shared no-op span for disabled observability."""

    __slots__ = ()

    #: id attributes mirror :class:`Span` so ``getattr``-free code works
    trace_id = None
    span_id = None
    parent_id = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> "NullSpan":
        return self

    def attach(self, child: object) -> object:
        return child


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer twin whose spans are all the shared :data:`NULL_SPAN`."""

    __slots__ = ()

    def span(self, name: str, /, **attrs: object) -> NullSpan:
        return NULL_SPAN

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
