"""Zero-dependency metrics primitives: Counter, Gauge, Histogram.

A :class:`MetricsRegistry` is a thread-safe catalogue of metric
*families*.  A family has a name, a help string and a fixed tuple of
label names; each distinct label-value combination materializes one
*child* holding the actual number(s).  Families with no label names act
as their own single child, so unlabeled metrics read naturally::

    registry = MetricsRegistry()
    queries = registry.counter("repro_search_queries_total",
                               "Queries executed.", labelnames=("kind",))
    queries.labels(kind="frame").inc()

    latency = registry.histogram("repro_search_seconds", "Query latency.")
    latency.observe(0.012)

Two renderers expose the whole registry: :meth:`MetricsRegistry.render_text`
emits the Prometheus text exposition format (served by ``GET /metrics``)
and :meth:`MetricsRegistry.render_json` a nested dict (``repro stats``,
``VideoRetrievalSystem.metrics()``).

``NULL_REGISTRY`` is the disabled-observability twin: it hands out shared
no-op metric objects, so instrumented code paths keep a single
attribute-call overhead when the ``obs_enabled`` gate is off.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricError",
    "NullMetric",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "DEFAULT_REGISTRY",
    "DEFAULT_BUCKETS",
    "diff_state",
]

#: latency-oriented default histogram buckets (seconds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric name, labels, or a family re-registered differently."""


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters can only increase; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution of observed values.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket always tops the list.  Rendering follows the
    Prometheus convention: cumulative ``_bucket{le=...}`` counts plus
    ``_sum`` and ``_count`` series.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets + (math.inf,), counts):
            running += n
            out.append((bound, running))
        return out

    def state(self) -> Dict[str, object]:
        """An atomic snapshot of the raw (non-cumulative) per-bucket counts."""
        with self._lock:
            return {
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def merge(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold another histogram's raw bucket counts into this one.

        Both histograms must share the same bucket bounds (``counts`` has
        one slot per bound plus the trailing ``+Inf`` slot).
        """
        if len(counts) != len(self._counts):
            raise MetricError(
                f"histogram merge: {len(counts)} bucket counts, "
                f"expected {len(self._counts)}"
            )
        with self._lock:
            for i, n in enumerate(counts):
                self._counts[i] += int(n)
            self._sum += float(total)
            self._count += int(count)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its per-label-combination children.

    Calling a data method (``inc``/``set``/``dec``/``observe``) directly on
    a label-less family transparently targets its single child.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on {name}")
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **labels: object):
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _solo(self):
        if self.labelnames:
            raise MetricError(f"{self.name} is labeled; call .labels(...) first")
        return self.labels()

    # label-less conveniences -------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Thread-safe get-or-create catalogue of metric families."""

    def __init__(self) -> None:
        self._families: "Dict[str, MetricFamily]" = {}
        self._lock = threading.Lock()

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(
                    name, kind, help=help, labelnames=labelnames, buckets=buckets
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise MetricError(
                f"metric {name!r} already registered as {family.kind}"
                f"{family.labelnames}, requested {kind}{tuple(labelnames)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labelnames, buckets=buckets)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- cross-process state transfer -----------------------------------------

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of every family's raw values.

        Shape: ``{name: {kind, help, labelnames, buckets?, samples}}`` where
        each sample is ``{"labels": [v1, ...], ...raw values}`` (counters and
        gauges carry ``value``; histograms carry non-cumulative ``counts``
        plus ``sum``/``count``).  Feed two snapshots to :func:`diff_state`
        for deltas, or hand a snapshot to :meth:`merge_state` on another
        registry to aggregate a fleet.
        """
        out: Dict[str, object] = {}
        for family in self.families():
            samples: List[Dict[str, object]] = []
            for values, child in family.children():
                sample: Dict[str, object] = {"labels": list(values)}
                if family.kind == "histogram":
                    sample.update(child.state())
                else:
                    sample["value"] = child.value
                samples.append(sample)
            entry: Dict[str, object] = {
                "kind": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family._buckets)
            out[family.name] = entry
        return out

    def merge_state(
        self,
        state: Mapping[str, object],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a :meth:`state` snapshot (usually a delta) into this registry.

        Each incoming family is created on demand with ``extra_labels``'s
        names prepended to its label set — the coordinator merges worker
        deltas with ``{"shard": "3"}`` to get ``shard``-labeled fleet
        families.  Counters and histogram bucket counts add; gauges take
        the incoming value (last write wins).
        """
        extra = dict(extra_labels or {})
        for name, entry in state.items():
            kind = str(entry["kind"])
            labelnames = tuple(extra) + tuple(entry.get("labelnames") or ())
            if kind == "histogram":
                family = self.histogram(
                    name, str(entry.get("help", "")), labelnames,
                    buckets=tuple(entry.get("buckets") or DEFAULT_BUCKETS),
                )
            elif kind == "gauge":
                family = self.gauge(name, str(entry.get("help", "")), labelnames)
            else:
                family = self.counter(name, str(entry.get("help", "")), labelnames)
            own_names = tuple(entry.get("labelnames") or ())
            for sample in entry.get("samples") or ():
                labels = dict(extra)
                labels.update(zip(own_names, sample["labels"]))
                child = family.labels(**labels)
                if kind == "histogram":
                    child.merge(sample["counts"], sample["sum"], sample["count"])
                elif kind == "gauge":
                    child.set(sample["value"])
                else:
                    child.inc(sample["value"])

    # -- renderers ------------------------------------------------------------

    @staticmethod
    def _label_str(labelnames: Sequence[str], values: Sequence[str],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [
            f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, values)
        ]
        pairs.extend(f'{n}="{_escape_label_value(v)}"' for n, v in extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def render_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                if family.kind == "histogram":
                    for bound, cum in child.cumulative_counts():
                        le = self._label_str(
                            family.labelnames, values,
                            extra=((("le", _format_value(bound)),)),
                        )
                        lines.append(f"{family.name}_bucket{le} {cum}")
                    base = self._label_str(family.labelnames, values)
                    lines.append(
                        f"{family.name}_sum{base} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    base = self._label_str(family.labelnames, values)
                    lines.append(
                        f"{family.name}{base} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def render_json(self) -> Dict[str, object]:
        """``name -> {type, help, samples}`` with plain-JSON values."""
        out: Dict[str, object] = {}
        for family in self.families():
            samples: List[Dict[str, object]] = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if family.kind == "histogram":
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                {"le": b if b != math.inf else "+Inf", "count": c}
                                for b, c in child.cumulative_counts()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out


def diff_state(
    current: Mapping[str, object], previous: Mapping[str, object]
) -> Dict[str, object]:
    """The delta between two :meth:`MetricsRegistry.state` snapshots.

    Counters and histogram bucket counts subtract; gauges pass through the
    current value (they are not cumulative).  Samples that did not change
    — and families left with no changed samples — are dropped, so the
    piggybacked per-task payload stays proportional to recent activity.
    """
    out: Dict[str, object] = {}
    for name, entry in current.items():
        kind = str(entry["kind"])
        prev_entry = previous.get(name) or {}
        prev_samples = {
            tuple(s["labels"]): s for s in (prev_entry.get("samples") or ())
        }
        samples: List[Dict[str, object]] = []
        for sample in entry.get("samples") or ():
            prev = prev_samples.get(tuple(sample["labels"]))
            if kind == "histogram":
                if prev is None:
                    delta = dict(sample)
                else:
                    counts = [
                        max(0, int(c) - int(p))
                        for c, p in zip(sample["counts"], prev["counts"])
                    ]
                    delta = {
                        "labels": list(sample["labels"]),
                        "counts": counts,
                        "sum": max(0.0, float(sample["sum"]) - float(prev["sum"])),
                        "count": max(0, int(sample["count"]) - int(prev["count"])),
                    }
                if delta["count"]:
                    samples.append(delta)
            elif kind == "gauge":
                samples.append(dict(sample))
            else:
                base = 0.0 if prev is None else float(prev["value"])
                value = max(0.0, float(sample["value"]) - base)
                if value:
                    samples.append({"labels": list(sample["labels"]), "value": value})
        if samples:
            out[name] = {
                k: v for k, v in entry.items() if k != "samples"
            }
            out[name]["samples"] = samples
    return out


class NullMetric:
    """Shared do-nothing stand-in for every metric kind (disabled obs)."""

    __slots__ = ()

    def labels(self, **labels: object) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


NULL_METRIC = NullMetric()


class NullRegistry:
    """Registry twin whose families are all the shared :data:`NULL_METRIC`."""

    __slots__ = ()

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> NullMetric:
        return NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> NullMetric:
        return NULL_METRIC

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def state(self) -> Dict[str, object]:
        return {}

    def merge_state(
        self,
        state: Mapping[str, object],
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        pass

    def render_text(self) -> str:
        return ""

    def render_json(self) -> Dict[str, object]:
        return {}


NULL_REGISTRY = NullRegistry()

#: process-global default registry for callers outside a system instance
DEFAULT_REGISTRY = MetricsRegistry()
