"""repro -- a full reproduction of "Content Based Video Retrieval"
(B. V. Patel & B. B. Meshram, IJMA Vol. 4 No. 5, 2012).

The package implements the paper's complete system from scratch:

- :mod:`repro.imaging` -- NumPy imaging substrate (replaces Java JAI)
- :mod:`repro.video` -- video container format, synthetic corpus generator,
  and the §4.1 key-frame extraction algorithm
- :mod:`repro.features` -- the seven feature extractors of §4.3-4.8
- :mod:`repro.indexing` -- the §4.2 histogram range-finder index
- :mod:`repro.similarity` -- distance measures, DP sequence similarity and
  feature fusion
- :mod:`repro.db` -- an embedded mini relational engine (replaces Oracle 9i)
- :mod:`repro.core` -- the retrieval system proper (admin + user roles)
- :mod:`repro.eval` -- ground truth, precision metrics, simulated user study,
  and the Table 1 experiment driver
- :mod:`repro.web` -- a small JSON HTTP facade over the system
- :mod:`repro.analysis` -- reprolint, the project-native static analyzer
  that enforces the registry/feature-string/SQL/purity contracts in CI

Quickstart::

    from repro import VideoRetrievalSystem, make_corpus

    system = VideoRetrievalSystem.in_memory()
    for video in make_corpus(videos_per_category=2, seed=7):
        system.admin.add_video(video)
    results = system.search(system.any_key_frame(), top_k=10)

Public names are imported lazily so that ``import repro`` stays cheap.
"""

__version__ = "1.0.0"

_LAZY = {
    "VideoRetrievalSystem": ("repro.core.system", "VideoRetrievalSystem"),
    "SystemConfig": ("repro.core.config", "SystemConfig"),
    "CATEGORIES": ("repro.video.generator", "CATEGORIES"),
    "SyntheticVideo": ("repro.video.generator", "SyntheticVideo"),
    "VideoSpec": ("repro.video.generator", "VideoSpec"),
    "generate_video": ("repro.video.generator", "generate_video"),
    "make_corpus": ("repro.video.generator", "make_corpus"),
    "Image": ("repro.imaging.image", "Image"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return __all__
