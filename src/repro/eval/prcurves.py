"""Recall / MAP evaluation (the paper's "precision and recall" claim).

§6 concludes that "multiple features produce effective and efficient
system as precision and recall values are improved", but Table 1 reports
only precision.  This driver measures the missing half: recall@k and mean
average precision per method, using the same protocol as the Table 1
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TABLE1_FEATURES
from repro.core.system import VideoRetrievalSystem
from repro.eval.groundtruth import CategoryGroundTruth
from repro.eval.metrics import average_precision, recall_at_k
from repro.eval.table1 import _sample_queries

__all__ = ["RecallResult", "run_recall"]

DEFAULT_CUTOFFS: Tuple[int, ...] = (20, 50, 100)


@dataclass
class RecallResult:
    """recall@k and MAP per method."""

    recall: Dict[str, Dict[int, float]]
    mean_ap: Dict[str, float]
    n_queries: int
    cutoffs: Tuple[int, ...]

    @property
    def methods(self) -> Tuple[str, ...]:
        return tuple(self.recall)

    def combined_wins_map(self) -> bool:
        singles = [m for m in self.methods if m != "combined"]
        return all(self.mean_ap["combined"] >= self.mean_ap[m] for m in singles)

    def to_text(self) -> str:
        header = f"{'method':<16}" + "".join(
            f"{'R@' + str(k):>9}" for k in self.cutoffs
        ) + f"{'MAP':>9}"
        lines = [header, "-" * len(header)]
        for m in self.methods:
            row = f"{m:<16}" + "".join(
                f"{self.recall[m][k]:>9.3f}" for k in self.cutoffs
            )
            row += f"{self.mean_ap[m]:>9.3f}"
            lines.append(row)
        return "\n".join(lines)


def run_recall(
    system: VideoRetrievalSystem,
    ground_truth: CategoryGroundTruth,
    features: Sequence[str] = TABLE1_FEATURES,
    queries_per_category: int = 6,
    seed: int = 99,
    cutoffs: Tuple[int, ...] = DEFAULT_CUTOFFS,
    use_index: Optional[bool] = None,
) -> RecallResult:
    """Measure recall@k and MAP for every feature plus the combination."""
    rng = np.random.default_rng(seed)
    queries = _sample_queries(ground_truth, queries_per_category, rng)
    if not queries:
        raise ValueError("no queries sampled")
    max_k = max(cutoffs)
    methods = list(features) + ["combined"]
    recall_sums = {m: {k: 0.0 for k in cutoffs} for m in methods}
    ap_sums = {m: 0.0 for m in methods}

    for query_id in queries:
        image = system.get_key_frame(query_id)
        n_relevant = ground_truth.n_relevant(query_id)
        for method in methods:
            wanted = None if method == "combined" else [method]
            results = system.search(image, features=wanted, top_k=max_k + 1, use_index=use_index)
            ranked = [f for f in results.frame_ids() if f != query_id][:max_k]
            rel = ground_truth.relevance_list(query_id, ranked)
            for k in cutoffs:
                recall_sums[method][k] += recall_at_k(rel, k, n_relevant)
            ap_sums[method] += average_precision(rel, n_relevant=n_relevant)

    n = len(queries)
    return RecallResult(
        recall={m: {k: recall_sums[m][k] / n for k in cutoffs} for m in methods},
        mean_ap={m: ap_sums[m] / n for m in methods},
        n_queries=n,
        cutoffs=tuple(cutoffs),
    )
