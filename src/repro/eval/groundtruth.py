"""Relevance ground truth.

The paper's corpus is organized into categories ("e-learning, sports,
cartoon, movies, etc."), and a retrieved frame counts as correct when it
comes from the query's category -- the standard CBVR protocol its
precision table implies.  :class:`CategoryGroundTruth` captures exactly
that mapping.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence

__all__ = ["CategoryGroundTruth"]


class CategoryGroundTruth:
    """item id -> category, with relevance judgments derived from equality."""

    def __init__(self, categories: Mapping[Hashable, str]):
        if not categories:
            raise ValueError("ground truth must not be empty")
        self._categories: Dict[Hashable, str] = dict(categories)

    @classmethod
    def from_store(cls, store) -> "CategoryGroundTruth":
        """Build from a :class:`~repro.core.store.FeatureStore` (frame level)."""
        mapping = {}
        for fid in store.frame_ids():
            rec = store.get(fid)
            if rec.category is not None:
                mapping[fid] = rec.category
        return cls(mapping)

    def __len__(self) -> int:
        return len(self._categories)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._categories

    def category_of(self, item_id: Hashable) -> str:
        return self._categories[item_id]

    def categories(self) -> List[str]:
        return sorted(set(self._categories.values()))

    def is_relevant(self, query_id: Hashable, item_id: Hashable) -> bool:
        """True when both items share a category."""
        return self._categories[query_id] == self._categories[item_id]

    def relevance_list(self, query_id: Hashable, ranked_ids: Sequence[Hashable]) -> List[bool]:
        """Booleans for a ranked result list (unknown ids are irrelevant)."""
        qcat = self._categories[query_id]
        return [self._categories.get(i) == qcat for i in ranked_ids]

    def n_relevant(self, query_id: Hashable, exclude_self: bool = True) -> int:
        """Corpus-wide relevant count for a query (for recall)."""
        qcat = self._categories[query_id]
        count = sum(1 for c in self._categories.values() if c == qcat)
        return count - 1 if exclude_self and query_id in self._categories else count

    def ids_of_category(self, category: str) -> List[Hashable]:
        return sorted(
            (i for i, c in self._categories.items() if c == category), key=repr
        )
