"""Evaluation: ground truth, precision metrics, simulated user study, Table 1.

The paper's §5 evaluation reports *average precision at 20, 30, 50 and 100
retrieved frames* for each feature and for the combined ranking, with
relevance established by a user study over a category-organized corpus.
This package reproduces that measurement chain:

- :mod:`repro.eval.groundtruth` -- relevance = same ground-truth category.
- :mod:`repro.eval.userstudy` -- a panel of noisy simulated judges whose
  majority vote replaces the paper's human judgments.
- :mod:`repro.eval.metrics` -- precision@k, recall, AP, MAP.
- :mod:`repro.eval.table1` -- the experiment driver that regenerates
  Table 1 end to end.
"""

from repro.eval.groundtruth import CategoryGroundTruth
from repro.eval.metrics import average_precision, mean_average_precision, precision_at_k, recall_at_k
from repro.eval.table1 import Table1Result, run_table1
from repro.eval.userstudy import JudgePanel, NoisyJudge

__all__ = [
    "CategoryGroundTruth",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "mean_average_precision",
    "NoisyJudge",
    "JudgePanel",
    "run_table1",
    "Table1Result",
]
