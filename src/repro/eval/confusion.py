"""Category confusion analysis (extension).

Table 1 averages over all queries; this driver breaks retrieval down *per
category*: for each query, how the top-k splits across the corpus's
categories.  The row-normalized confusion matrix shows which categories
the low-level features actually mix up (e.g. fullscreen news graphics vs.
slides), which is the error analysis the paper's discussion gestures at
but never quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.system import VideoRetrievalSystem
from repro.eval.groundtruth import CategoryGroundTruth

__all__ = ["ConfusionResult", "run_confusion"]


@dataclass
class ConfusionResult:
    """Row-normalized confusion over categories.

    ``matrix[i, j]`` = fraction of the top-k retrieved for queries of
    category ``categories[i]`` that belong to category ``categories[j]``.
    """

    categories: Tuple[str, ...]
    matrix: np.ndarray
    top_k: int
    n_queries: int

    def diagonal_mean(self) -> float:
        """Mean per-category precision (chance = 1 / n_categories)."""
        return float(np.mean(np.diag(self.matrix)))

    def most_confused(self) -> Tuple[str, str, float]:
        """The largest off-diagonal cell: (query_cat, retrieved_cat, rate)."""
        m = self.matrix.copy()
        np.fill_diagonal(m, -1.0)
        i, j = np.unravel_index(int(np.argmax(m)), m.shape)
        return self.categories[i], self.categories[j], float(m[i, j])

    def to_text(self) -> str:
        width = max(len(c) for c in self.categories) + 2
        header = " " * width + "".join(f"{c[:9]:>10}" for c in self.categories)
        lines = [header]
        for i, cat in enumerate(self.categories):
            row = f"{cat:<{width}}" + "".join(
                f"{self.matrix[i, j]:>10.3f}" for j in range(len(self.categories))
            )
            lines.append(row)
        return "\n".join(lines)


def run_confusion(
    system: VideoRetrievalSystem,
    ground_truth: CategoryGroundTruth,
    top_k: int = 10,
    queries_per_category: int = 6,
    features: Optional[Sequence[str]] = None,
    seed: int = 7,
    use_index: Optional[bool] = None,
) -> ConfusionResult:
    """Build the confusion matrix from sampled per-category queries."""
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    categories = tuple(ground_truth.categories())
    index_of = {c: i for i, c in enumerate(categories)}
    counts = np.zeros((len(categories), len(categories)))
    rng = np.random.default_rng(seed)

    n_queries = 0
    for category in categories:
        ids = ground_truth.ids_of_category(category)
        take = min(queries_per_category, len(ids))
        chosen = rng.choice(len(ids), size=take, replace=False)
        for qi in sorted(chosen):
            query_id = ids[qi]
            image = system.get_key_frame(query_id)
            results = system.search(
                image, features=features, top_k=top_k + 1, use_index=use_index
            )
            retrieved = [
                h for h in results if h.frame_id != query_id and h.category is not None
            ][:top_k]
            for hit in retrieved:
                counts[index_of[category], index_of[hit.category]] += 1
            n_queries += 1

    row_sums = counts.sum(axis=1, keepdims=True)
    matrix = np.divide(counts, np.maximum(row_sums, 1e-12))
    return ConfusionResult(
        categories=categories, matrix=matrix, top_k=top_k, n_queries=n_queries
    )
