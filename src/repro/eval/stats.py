"""Bootstrap statistics for retrieval comparisons (extension).

The paper asserts that the combined method "outperforms all the other
methods" from point estimates alone.  These helpers quantify the
uncertainty: percentile bootstrap confidence intervals over per-query
precision samples, and a paired bootstrap test for "method A beats method
B" that respects the fact that both methods answered the *same* queries.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["bootstrap_ci", "paired_bootstrap_pvalue"]


def bootstrap_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile bootstrap CI for the mean: ``(mean, low, high)``."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(arr.mean()), float(low), float(high)


def paired_bootstrap_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """One-sided paired bootstrap p-value for "mean(a) > mean(b)".

    ``a[i]`` and ``b[i]`` must come from the same query.  Returns the
    fraction of resamples in which a's mean does NOT exceed b's -- small
    values mean the advantage is stable across query resamples.
    """
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape or va.size == 0:
        raise ValueError("paired samples must be equal-length and non-empty")
    diffs = va - vb
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, diffs.size, size=(n_resamples, diffs.size))
    resampled_means = diffs[idx].mean(axis=1)
    return float(np.mean(resampled_means <= 0.0))
