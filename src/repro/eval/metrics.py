"""Retrieval quality metrics.

All metrics consume a boolean relevance list in rank order (the judged
output of one query) and are purely arithmetic, so they are shared by the
exact ground truth and the noisy user-study pipeline.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "mean_average_precision",
    "precision_recall_curve",
    "f1_at_k",
]


def _check_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def precision_at_k(relevance: Sequence[bool], k: int) -> float:
    """Fraction of the top-k that is relevant.

    Shorter result lists are treated as padded with irrelevant items (the
    system failed to return anything useful there), which matches how the
    paper can quote precision at 100 for every query.
    """
    _check_k(k)
    top = list(relevance[:k])
    return sum(bool(r) for r in top) / float(k)


def recall_at_k(relevance: Sequence[bool], k: int, n_relevant: int) -> float:
    """Fraction of all relevant items found in the top-k."""
    _check_k(k)
    if n_relevant <= 0:
        return 0.0
    found = sum(bool(r) for r in relevance[:k])
    return min(1.0, found / float(n_relevant))


def f1_at_k(relevance: Sequence[bool], k: int, n_relevant: int) -> float:
    """Harmonic mean of precision@k and recall@k."""
    p = precision_at_k(relevance, k)
    r = recall_at_k(relevance, k, n_relevant)
    if p + r <= 0:
        return 0.0
    return 2 * p * r / (p + r)


def average_precision(relevance: Sequence[bool], n_relevant: int = None) -> float:
    """Mean of precision at each relevant rank (AP).

    ``n_relevant`` defaults to the number of relevant items present in the
    list; pass the corpus-wide count to penalize missed items.
    """
    hits = 0
    precision_sum = 0.0
    for i, rel in enumerate(relevance):
        if rel:
            hits += 1
            precision_sum += hits / (i + 1.0)
    denom = n_relevant if n_relevant is not None else hits
    if denom is None or denom <= 0:
        return 0.0
    return precision_sum / denom


def mean_average_precision(relevance_lists: Sequence[Sequence[bool]], n_relevant: Sequence[int] = None) -> float:
    """MAP over queries."""
    if not relevance_lists:
        return 0.0
    if n_relevant is None:
        return sum(average_precision(r) for r in relevance_lists) / len(relevance_lists)
    if len(n_relevant) != len(relevance_lists):
        raise ValueError("n_relevant must align with relevance_lists")
    return sum(
        average_precision(r, n) for r, n in zip(relevance_lists, n_relevant)
    ) / len(relevance_lists)


def precision_recall_curve(relevance: Sequence[bool], n_relevant: int) -> List[tuple]:
    """(recall, precision) points at every rank."""
    points = []
    hits = 0
    for i, rel in enumerate(relevance):
        if rel:
            hits += 1
        points.append(
            (
                hits / n_relevant if n_relevant > 0 else 0.0,
                hits / (i + 1.0),
            )
        )
    return points
