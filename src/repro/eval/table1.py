"""The Table 1 experiment: average precision at 20/30/50/100 per feature.

Protocol (matching §5):

1. Build a category-organized corpus and ingest it (key frames, features,
   index, DB).
2. Sample query key frames uniformly per category.
3. For each method -- every individual feature plus the combined fusion --
   retrieve the top 100 key frames (the query's own frame excluded).
4. Judge relevance with the (simulated) user-study panel against category
   ground truth.
5. Average precision@{20, 30, 50, 100} over all queries.

The numbers to compare against (the paper's Table 1):

============  ======  ======  ======  =======
method         @20     @30     @50     @100
============  ======  ======  ======  =======
GLCM          0.435   0.423   0.410   0.354
Gabor         0.586   0.528   0.489   0.396
Tamura        0.568   0.514   0.469   0.412
Histogram     0.398   0.368   0.324   0.310
Correlogram   0.412   0.405   0.369   0.342
RegionGrow    0.520   0.468   0.434   0.397
Combined      0.629   0.553   0.494   0.421
============  ======  ======  ======  =======
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TABLE1_FEATURES, SystemConfig
from repro.core.system import VideoRetrievalSystem
from repro.eval.groundtruth import CategoryGroundTruth
from repro.eval.metrics import precision_at_k
from repro.eval.userstudy import JudgePanel
from repro.video.generator import CATEGORIES, make_corpus

__all__ = ["PAPER_TABLE1", "Table1Result", "run_table1", "build_table1_system"]

CUTOFFS: Tuple[int, ...] = (20, 30, 50, 100)

#: The paper's reported values: method -> {cutoff: avg precision}.
PAPER_TABLE1: Dict[str, Dict[int, float]] = {
    "glcm": {20: 0.435, 30: 0.423, 50: 0.410, 100: 0.354},
    "gabor": {20: 0.586, 30: 0.528, 50: 0.489, 100: 0.396},
    "tamura": {20: 0.568, 30: 0.514, 50: 0.469, 100: 0.412},
    "sch": {20: 0.398, 30: 0.368, 50: 0.324, 100: 0.310},
    "acc": {20: 0.412, 30: 0.405, 50: 0.369, 100: 0.342},
    "regions": {20: 0.520, 30: 0.468, 50: 0.434, 100: 0.397},
    "combined": {20: 0.629, 30: 0.553, 50: 0.494, 100: 0.421},
}

_LABELS = {
    "glcm": "GLCM",
    "gabor": "Gabor",
    "tamura": "Tamura",
    "sch": "Histogram",
    "acc": "Autocorrelogram",
    "regions": "RegionGrowing",
    "combined": "Combined",
}


@dataclass
class Table1Result:
    """Measured table plus shape checks against the paper.

    ``samples[method][k]`` holds the per-query precision values behind each
    mean, enabling bootstrap confidence intervals and paired comparisons.
    """

    precision: Dict[str, Dict[int, float]]
    n_queries: int
    n_frames: int
    cutoffs: Tuple[int, ...] = CUTOFFS
    methods: Tuple[str, ...] = ()
    samples: Optional[Dict[str, Dict[int, List[float]]]] = None

    def __post_init__(self) -> None:
        if not self.methods:
            self.methods = tuple(self.precision)

    def confidence_interval(self, method: str, k: int, confidence: float = 0.95):
        """Bootstrap CI ``(mean, low, high)`` for one cell (needs samples)."""
        if self.samples is None:
            raise ValueError("this result carries no per-query samples")
        from repro.eval.stats import bootstrap_ci

        return bootstrap_ci(self.samples[method][k], confidence=confidence)

    def paired_pvalue(self, method_a: str, method_b: str, k: int) -> float:
        """Paired bootstrap p-value for "A beats B at cutoff k"."""
        if self.samples is None:
            raise ValueError("this result carries no per-query samples")
        from repro.eval.stats import paired_bootstrap_pvalue

        return paired_bootstrap_pvalue(self.samples[method_a][k], self.samples[method_b][k])

    # -- shape checks -----------------------------------------------------------

    def combined_wins(self) -> Dict[int, bool]:
        """Does combined beat every individual feature at each cutoff?"""
        singles = [m for m in self.methods if m != "combined"]
        return {
            k: all(
                self.precision["combined"][k] >= self.precision[m][k] for m in singles
            )
            for k in self.cutoffs
        }

    def monotone_decreasing(self) -> Dict[str, bool]:
        """Precision should not increase as the cutoff grows."""
        out = {}
        for m in self.methods:
            vals = [self.precision[m][k] for k in sorted(self.cutoffs)]
            out[m] = all(vals[i] >= vals[i + 1] - 1e-9 for i in range(len(vals) - 1))
        return out

    # -- rendering ------------------------------------------------------------------

    def to_text(self, paper: Optional[Dict[str, Dict[int, float]]] = None) -> str:
        """Formatted table; with ``paper`` values interleaved when given."""
        lines = []
        header = f"{'method':<16}" + "".join(f"{'@' + str(k):>9}" for k in self.cutoffs)
        lines.append(header)
        lines.append("-" * len(header))
        for m in self.methods:
            label = _LABELS.get(m, m)
            row = f"{label:<16}" + "".join(
                f"{self.precision[m][k]:>9.3f}" for k in self.cutoffs
            )
            lines.append(row)
            if paper and m in paper:
                ref = f"{'  (paper)':<16}" + "".join(
                    f"{paper[m][k]:>9.3f}" for k in self.cutoffs
                )
                lines.append(ref)
        return "\n".join(lines)


def build_table1_system(
    videos_per_category: int = 12,
    seed: int = 2012,
    config: Optional[SystemConfig] = None,
    categories: Sequence[str] = CATEGORIES,
    **spec_overrides,
) -> Tuple[VideoRetrievalSystem, CategoryGroundTruth]:
    """Generate + ingest the evaluation corpus; returns (system, ground truth)."""
    spec_overrides.setdefault("n_shots", 6)
    spec_overrides.setdefault("frames_per_shot", 5)
    corpus = make_corpus(
        videos_per_category=videos_per_category,
        seed=seed,
        categories=categories,
        **spec_overrides,
    )
    system = VideoRetrievalSystem.in_memory(config)
    admin = system.login_admin()
    for video in corpus:
        admin.add_video(video)
    return system, CategoryGroundTruth.from_store(system._store)


def _sample_queries(
    gt: CategoryGroundTruth, per_category: int, rng: np.random.Generator
) -> List:
    queries = []
    for category in gt.categories():
        ids = gt.ids_of_category(category)
        take = min(per_category, len(ids))
        chosen = rng.choice(len(ids), size=take, replace=False)
        queries.extend(ids[i] for i in sorted(chosen))
    return queries


def run_table1(
    system: Optional[VideoRetrievalSystem] = None,
    ground_truth: Optional[CategoryGroundTruth] = None,
    features: Sequence[str] = TABLE1_FEATURES,
    queries_per_category: int = 8,
    judge_panel: Optional[JudgePanel] = None,
    seed: int = 99,
    use_index: Optional[bool] = None,
    cutoffs: Tuple[int, ...] = CUTOFFS,
    **corpus_kwargs,
) -> Table1Result:
    """Run the full Table 1 experiment.

    Pass a prebuilt ``system`` + ``ground_truth`` to reuse an ingested
    corpus (the ablation benches do); otherwise a corpus is built from
    ``corpus_kwargs``.
    """
    if (system is None) != (ground_truth is None):
        raise ValueError("pass both system and ground_truth, or neither")
    if system is None:
        system, ground_truth = build_table1_system(**corpus_kwargs)
    panel = judge_panel or JudgePanel(n_judges=3, error_rate=0.0, seed=seed)
    rng = np.random.default_rng(seed)
    queries = _sample_queries(ground_truth, queries_per_category, rng)
    if not queries:
        raise ValueError("no queries sampled; is the corpus empty?")

    max_k = max(cutoffs)
    methods = list(features) + ["combined"]
    samples: Dict[str, Dict[int, List[float]]] = {
        m: {k: [] for k in cutoffs} for m in methods
    }

    for query_id in queries:
        query_image = system.get_key_frame(query_id)
        for method in methods:
            wanted = None if method == "combined" else [method]
            results = system.search(
                query_image,
                features=wanted,
                top_k=max_k + 1,
                use_index=use_index,
            )
            ranked = [fid for fid in results.frame_ids() if fid != query_id][:max_k]
            true_rel = ground_truth.relevance_list(query_id, ranked)
            judged = panel.judge(true_rel)
            for k in cutoffs:
                samples[method][k].append(precision_at_k(judged, k))

    n = len(queries)
    precision = {
        m: {k: sum(samples[m][k]) / n for k in cutoffs} for m in methods
    }
    return Table1Result(
        precision=precision,
        n_queries=n,
        n_frames=system.n_key_frames(),
        cutoffs=tuple(cutoffs),
        methods=tuple(methods),
        samples=samples,
    )
