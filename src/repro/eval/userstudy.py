"""Simulated user study.

The paper: "a user study measured correctness of response."  Human judges
are unavailable offline, so the measurement process is simulated: each
:class:`NoisyJudge` sees the true (category) relevance of a retrieved frame
and reports it with some per-judge error probability; a :class:`JudgePanel`
aggregates several judges by majority vote.  With ``error_rate=0`` the
panel degenerates to exact ground truth, which the tests exploit; with a
realistic error rate (~5-10%) the precision numbers wobble the way human
studies do without changing who wins.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["NoisyJudge", "JudgePanel"]


class NoisyJudge:
    """One judge: flips each true judgment with probability ``error_rate``."""

    def __init__(self, error_rate: float, seed: int):
        if not 0.0 <= error_rate < 0.5:
            raise ValueError("error_rate must be in [0, 0.5) for a meaningful judge")
        self.error_rate = error_rate
        self._rng = np.random.default_rng(seed)

    def judge(self, true_relevance: Sequence[bool]) -> List[bool]:
        flips = self._rng.random(len(true_relevance)) < self.error_rate
        return [bool(r) != bool(f) for r, f in zip(true_relevance, flips)]


class JudgePanel:
    """A panel of noisy judges aggregated by majority vote."""

    def __init__(self, n_judges: int = 3, error_rate: float = 0.05, seed: int = 0):
        if n_judges < 1:
            raise ValueError("need at least one judge")
        self.judges = [
            NoisyJudge(error_rate, seed=seed * 1000 + i) for i in range(n_judges)
        ]

    @property
    def n_judges(self) -> int:
        return len(self.judges)

    def judge(self, true_relevance: Sequence[bool]) -> List[bool]:
        """Majority vote over all judges' (independently noisy) judgments."""
        votes = np.zeros(len(true_relevance), dtype=np.int64)
        for judge in self.judges:
            votes += np.asarray(judge.judge(true_relevance), dtype=np.int64)
        return [bool(v * 2 > self.n_judges) for v in votes]
